open Pta_ds
open Pta_ir
module Svfg = Pta_svfg.Svfg
module Engine = Pta_engine.Engine
module Scheduler = Pta_engine.Scheduler
module Telemetry = Pta_engine.Telemetry

type result = {
  c : Solver_common.t;
  (* keys are [node lsl 31 lor obj] — avoids tuple allocation on the hot
     path; the packing is checked at creation (cf. [key]) *)
  ins : (int, Ptset.t) Hashtbl.t;
  outs : (int, Ptset.t) Hashtbl.t;
  node_objs : (int, Bitset.t) Hashtbl.t;
      (* per node: objects with a materialised IN set — a store must pass
         these through to OUT when it does not actually define them *)
}

type paused = { res : result; eng : Engine.t }
type outcome = Done of result | Paused of paused

let key n o =
  if n < 0 || o < 0 || n >= 1 lsl 31 || o >= 1 lsl 31 then
    invalid_arg "Sfs.key: node or object id exceeds the 31-bit packed range";
  (n lsl 31) lor o

(* IN/OUT tables hold interned ids; an absent entry and an explicit [empty]
   entry differ — stores pass through exactly the *materialised* INs, so
   reading a set must record its existence, as before. *)
let find_or_empty tbl k =
  match Hashtbl.find_opt tbl k with
  | Some id -> id
  | None ->
    Hashtbl.add tbl k Ptset.empty;
    Ptset.empty

let in_id t n o =
  (match Hashtbl.find_opt t.node_objs n with
  | Some s -> ignore (Bitset.add s o)
  | None -> Hashtbl.add t.node_objs n (Bitset.singleton o));
  find_or_empty t.ins (key n o)

let out_id t n o = find_or_empty t.outs (key n o)

(* Union [src] into the IN set of [(n, o)]; true iff it grew. *)
let union_in t n o src =
  let s = in_id t n o in
  let s' = Ptset.union s src in
  if Ptset.equal s' s then false
  else begin
    Hashtbl.replace t.ins (key n o) s';
    true
  end

(* The set a node exposes to its successors for [o]: stores expose OUT,
   everything else passes its IN through. *)
let out_for_id t n o =
  match Svfg.kind t.c.Solver_common.svfg n with
  | Svfg.NInst _ when Inst.is_store (Svfg.inst_of t.c.Solver_common.svfg n) ->
    out_id t n o
  | _ -> in_id t n o

type seed = {
  seed_pt : (Inst.var * Bitset.t) list;
  seed_ins : (int * Inst.var * Bitset.t) list;
  seed_outs : (int * Inst.var * Bitset.t) list;
  schedule : int list;
}

(* Build the solver state and its engine, seed every node, but do not run:
   [solve] drives it to fixpoint, [solve_budgeted]/[resume] in slices. *)
let start ?(strategy = `Fifo) ?strong_updates ?seed svfg =
  let tel =
    Telemetry.phase ~name:"sfs.solve" ~scheduler:(Scheduler.name strategy) ()
  in
  let c = Solver_common.create ?strong_updates ~tel svfg in
  let t =
    { c; ins = Hashtbl.create 1024; outs = Hashtbl.create 256;
      node_objs = Hashtbl.create 256 }
  in
  let props = c.Solver_common.props in
  (* [process] collects the nodes to (re)visit in [buf]; the engine owns
     scheduling and deduplication. *)
  let buf = ref [] in
  let push n = buf := n :: !buf in
  let push_users v = List.iter push (Svfg.users svfg v) in
  (* Propagate [set] along every outgoing [o]-edge of [n]. Callers pass
     either a full exposed set (phi-like pass-through nodes, where the
     memoized union makes re-propagation cheap) or just the delta a store
     added, which is what makes this difference propagation. *)
  let propagate n o set =
    if not (Ptset.is_empty set) then
      Svfg.iter_ind_succs svfg n o (fun m ->
          incr props;
          if union_in t m o set then push m)
  in
  let on_call_edge cs g =
    List.iter
      (fun (src, o, dst) ->
        incr props;
        (* A late edge needs a full sync: the destination missed every delta
           propagated before the edge existed. *)
        if union_in t dst o (out_for_id t src o) then push dst)
      (Svfg.add_call_edges svfg cs g)
  in
  let process n =
    buf := [];
    (match Svfg.kind svfg n with
    | Svfg.NInst _ -> (
      match Svfg.inst_of svfg n with
      | Inst.Load { lhs; ptr } ->
        let mu =
          match Svfg.kind svfg n with
          | Svfg.NInst { f; i } -> Pta_memssa.Annot.mu (Svfg.annot svfg) f i
          | _ ->
            invalid_arg
              (Format.asprintf
                 "Sfs.solve: load %a is not an instruction node — SVFG node \
                  kinds out of sync"
                 (Svfg.pp_node svfg) n)
        in
        let changed = ref false in
        Bitset.iter
          (fun o ->
            if Bitset.mem mu o then
              if Solver_common.union_pt c lhs (in_id t n o) then changed := true)
          (Solver_common.pt_of c ptr);
        if !changed then push_users lhs
      | Inst.Store { ptr; rhs } ->
        let chi =
          match Svfg.kind svfg n with
          | Svfg.NInst { f; i } -> Pta_memssa.Annot.chi (Svfg.annot svfg) f i
          | _ ->
            invalid_arg
              (Format.asprintf
                 "Sfs.solve: store %a is not an instruction node — SVFG node \
                  kinds out of sync"
                 (Svfg.pp_node svfg) n)
        in
        let ptr_pts = Solver_common.pt_of c ptr in
        let rhs_id = Solver_common.pt_id c rhs in
        Bitset.iter
          (fun o ->
            if Bitset.mem chi o then begin
              let out0 = out_id t n o in
              let out1, d1 = Ptset.union_delta out0 rhs_id in
              let out2, d2 =
                if Solver_common.strong_update_ok c ~ptr o then (out1, Ptset.empty)
                else Ptset.union_delta out1 (in_id t n o)
              in
              if not (Ptset.equal out2 out0) then begin
                Hashtbl.replace t.outs (key n o) out2;
                propagate n o (Ptset.union d1 d2)
              end
            end)
          ptr_pts;
        (* Spurious χ objects (the auxiliary analysis thought this store may
           define them, so the SVFG routes their def-use chain through this
           node, but flow-sensitively the store does not write them): pass
           IN through to OUT unchanged — except for a statically strong-
           updated object, which is killed here no matter what. *)
        (match Hashtbl.find_opt t.node_objs n with
        | Some objs ->
          Bitset.iter
            (fun o ->
              if
                (not (Bitset.mem ptr_pts o))
                && not (Solver_common.strong_update_ok c ~ptr o)
              then begin
                let out0 = out_id t n o in
                let out1, d = Ptset.union_delta out0 (in_id t n o) in
                if not (Ptset.equal out1 out0) then begin
                  Hashtbl.replace t.outs (key n o) out1;
                  propagate n o d
                end
              end)
            objs
        | None -> ())
      | ins -> Solver_common.process_top_level c ~push_users ~on_call_edge ~node:n ins)
    | Svfg.NMemPhi { obj; _ }
    | Svfg.NFormalIn { obj; _ }
    | Svfg.NFormalOut { obj; _ }
    | Svfg.NActualIn { obj; _ }
    | Svfg.NActualOut { obj; _ } ->
      propagate n obj (in_id t n obj));
    !buf
  in
  let eng =
    Engine.create ~telemetry:tel
      ~scheduler:(Solver_common.scheduler strategy svfg)
      ~process ()
  in
  (match seed with
  | None ->
    for n = 0 to Svfg.n_nodes svfg - 1 do
      Engine.push eng n
    done
  | Some s ->
    (* Install the reused facts, then queue only the nodes the caller
       computed as potentially out of date. Seeds must be exact final values
       (for reused nodes) or sound initial values (boundary injections into
       re-solved nodes): the monotone engine then converges to the same
       fixpoint a whole-program run would, doing only the queued work. *)
    List.iter
      (fun (v, set) ->
        ignore (Solver_common.union_pt c v (Ptset.of_bitset set)))
      s.seed_pt;
    List.iter
      (fun (n, o, set) -> ignore (union_in t n o (Ptset.of_bitset set)))
      s.seed_ins;
    List.iter
      (fun (n, o, set) ->
        Hashtbl.replace t.outs (key n o) (Ptset.of_bitset set))
      s.seed_outs;
    List.iter (Engine.push eng) s.schedule);
  { res = t; eng }

let continue_ budget p =
  match Engine.run ?budget p.eng with
  | Engine.Fixpoint -> Done p.res
  | Engine.Paused _ -> Paused p

let solve ?strategy ?strong_updates svfg =
  match continue_ None (start ?strategy ?strong_updates svfg) with
  | Done r -> r
  | Paused _ -> assert false (* no budget: run only returns at fixpoint *)

let solve_seeded ?strategy ?strong_updates ~seed svfg =
  match continue_ None (start ?strategy ?strong_updates ~seed svfg) with
  | Done r -> r
  | Paused _ -> assert false

let solve_budgeted ?strategy ?strong_updates ~budget svfg =
  continue_ (Some budget) (start ?strategy ?strong_updates svfg)

let resume ~budget p = continue_ (Some budget) p

let pt t v = Solver_common.pt_of t.c v
let in_set t n o = Option.map Ptset.view (Hashtbl.find_opt t.ins (key n o))
let out_set t n o = Option.map Ptset.view (Hashtbl.find_opt t.outs (key n o))

(* Deterministic sweep over the materialised non-empty entries (sorted by
   packed key, i.e. by (node, object)) — what the per-function result
   artifacts are built from. *)
let iter_nonempty tbl f =
  let keys =
    Hashtbl.fold (fun k id acc -> if Ptset.is_empty id then acc else k :: acc)
      tbl []
  in
  let mask = (1 lsl 31) - 1 in
  List.iter
    (fun k -> f (k lsr 31) (k land mask) (Ptset.view (Hashtbl.find tbl k)))
    (List.sort compare keys)

let iter_ins t f = iter_nonempty t.ins f
let iter_outs t f = iter_nonempty t.outs f

(* Flow-insensitive collapse of an object's contents over all program
   points. *)
let object_pt t o =
  let mask = (1 lsl 31) - 1 in
  let acc = Bitset.create () in
  let scan tbl =
    Hashtbl.iter
      (fun k id ->
        if k land mask = o then
          ignore (Bitset.union_into ~into:acc (Ptset.view id)))
      tbl
  in
  scan t.ins;
  scan t.outs;
  acc

let callgraph t = t.c.Solver_common.cg_fs

let n_sets t = Hashtbl.length t.ins + Hashtbl.length t.outs

let tally t =
  let tl = Ptset.Tally.create () in
  Hashtbl.iter (fun _ id -> Ptset.Tally.visit tl id) t.ins;
  Hashtbl.iter (fun _ id -> Ptset.Tally.visit tl id) t.outs;
  tl

let words t = Ptset.Tally.shared_words (tally t)
let unshared_words t = Ptset.Tally.unshared_words (tally t)
let n_unique_sets t = Ptset.Tally.unique (tally t)

let telemetry t = t.c.Solver_common.tel
let n_propagations t = !(t.c.Solver_common.props)
let processed t = (telemetry t).Telemetry.pops
