(** Machinery shared by the SFS and VSFS solvers: the global top-level
    points-to sets (one per variable, valid program-wide thanks to partial
    SSA), the flow-sensitively resolved call graph, and the top-level
    transfer functions (ADDR, COPY, PHI, FIELD, CALL, RET of Fig. 10). The
    two solvers differ only in how address-taken objects' points-to sets are
    stored and propagated, which is exactly the paper's point.

    Both solvers run on {!Pta_engine.Engine}; [create] takes the solve's
    telemetry phase and caches the hot extras ([top_adds], [top_unions],
    [props]) as refs. *)

open Pta_ir

type t = {
  svfg : Pta_svfg.Svfg.t;
  pt : Pta_ds.Ptset.t Pta_ds.Vec.t;  (** interned top-level sets, one id per var *)
  cg_fs : Callgraph.t;  (** call edges discovered flow-sensitively *)
  callers : (Inst.func_id, (Callgraph.callsite * Inst.var option) list ref) Hashtbl.t;
  su_enabled : bool;  (** strong updates enabled (ablation switch) *)
  tel : Pta_engine.Telemetry.phase;
  top_adds : int ref;
  top_unions : int ref;
  props : int ref;  (** sparse-edge propagations (the solver bumps it) *)
}

val create :
  ?strong_updates:bool -> tel:Pta_engine.Telemetry.phase -> Pta_svfg.Svfg.t -> t
(** [strong_updates] defaults to [true]; [false] disables [SU] entirely
    (benchmarked as an ablation — both solvers lose the same precision). *)

val scheduler :
  Pta_engine.Scheduler.strategy -> Pta_svfg.Svfg.t -> Pta_engine.Scheduler.t
(** A scheduler over SVFG node ids; [`Topo] ranks by the SCC condensation of
    the snapshot ({!Pta_svfg.Svfg.topo_rank}). *)

val pt_id : t -> Inst.var -> Pta_ds.Ptset.t
(** Interned id of [pt v] (grows the table on demand for late field
    objects). *)

val pt_of : t -> Inst.var -> Pta_ds.Bitset.t
(** Read-only canonical view of [pt v] — shared with the intern pool, never
    mutate it. *)

val add_pt : t -> Inst.var -> Inst.var -> bool
val union_pt : t -> Inst.var -> Pta_ds.Ptset.t -> bool

val strong_update_ok : t -> ptr:Inst.var -> Inst.var -> bool
(** [strong_update_ok t ~ptr o]: the store [*ptr = _] may strongly update
    [o], i.e. [pt(ptr) = {o}] and [o ∈ SN]. *)

val process_top_level :
  t ->
  push_users:(Inst.var -> unit) ->
  on_call_edge:(Callgraph.callsite -> Inst.func_id -> unit) ->
  node:int ->
  Inst.t ->
  unit
(** Applies the top-level rules for one instruction node. [push_users v] is
    invoked whenever [pt v] changed; [on_call_edge] whenever the node is a
    call and one of its (current) targets is seen — idempotent work such as
    SVFG edge insertion must be guarded by the callee. Loads and stores are
    ignored here (solver-specific). *)

val resolve_targets : t -> Inst.callee -> Inst.func_id list
(** Current flow-sensitive targets of a callee expression. *)
