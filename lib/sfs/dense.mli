(** Dense (ICFG-based) flow-sensitive points-to analysis.

    The traditional formulation (Eq. 4-5): IN/OUT maps from objects to
    points-to sets at every ICFG node, propagated along control-flow edges —
    no memory SSA, no SVFG. Top-level variables still use global sets
    (partial SSA), and call/return edges carry the same per-object filters
    the SVFG encodes with its call-boundary nodes (inflow into callees, mods
    out of callees, everything across the call site weakly).

    Because it shares no construction code with {!Sfs} beyond the top-level
    rules, agreement between the two on arbitrary programs is a strong
    differential test of memory-SSA and SVFG construction. It is quadratic-
    ish and only used on test-sized programs and in benchmarks as the
    "traditional analysis" ablation. Runs on {!Pta_engine.Engine} (phase
    ["dense.solve"]; [`Topo] ranks ICFG nodes by the static graph's SCC
    condensation). *)

open Pta_ir

type result

val solve :
  ?strategy:Pta_engine.Scheduler.strategy ->
  Pta_ir.Prog.t ->
  Pta_memssa.Modref.aux ->
  result
(** [aux] supplies the auxiliary mod/ref used for call-edge filtering (the
    call graph itself is re-resolved flow-sensitively). *)

val pt : result -> Inst.var -> Pta_ds.Bitset.t
val callgraph : result -> Callgraph.t
val n_sets : result -> int
val words : result -> int
val telemetry : result -> Pta_engine.Telemetry.phase
val processed : result -> int
