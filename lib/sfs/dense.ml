open Pta_ds
open Pta_ir

type result = {
  prog : Prog.t;
  icfg : Icfg.t;
  mr : Pta_memssa.Modref.t;
  su_obj : (int, int) Hashtbl.t;
      (* store node -> the object it strongly updates (statically decided
         from the auxiliary analysis, like the sparse solvers) *)
  pt : Ptset.t Vec.t;
  ins : (int * int, Ptset.t) Hashtbl.t;  (* (icfg node, obj) -> set *)
  outs : (int * int, Ptset.t) Hashtbl.t;  (* store nodes only *)
  objs : Bitset.t Vec.t;  (* objects materialised at each node *)
  cg_fs : Callgraph.t;
  (* per callee: discovered (call node, return sites, lhs) *)
  callers : (Inst.func_id, (int * int list * Inst.var option) list ref) Hashtbl.t;
  tel : Pta_engine.Telemetry.phase;
}

let obj_dummy = Bitset.create ()

let pt_id t v =
  if v >= Vec.length t.pt then Vec.grow_to t.pt (v + 1);
  Vec.get t.pt v

let pt_of t v = Ptset.view (pt_id t v)

let add_pt t v o =
  let s = pt_id t v in
  let s' = Ptset.add s o in
  if Ptset.equal s' s then false
  else begin
    Vec.set t.pt v s';
    true
  end

let union_pt t v src =
  let s = pt_id t v in
  let s' = Ptset.union s src in
  if Ptset.equal s' s then false
  else begin
    Vec.set t.pt v s';
    true
  end

(* Entry *presence* matters, not just contents: a store passes through
   exactly the objects without an OUT entry, so reads materialise [empty]
   entries exactly like the mutable version materialised fresh bitsets. *)
let find_or_empty tbl key =
  match Hashtbl.find_opt tbl key with
  | Some id -> id
  | None ->
    Hashtbl.add tbl key Ptset.empty;
    Ptset.empty

let objs_of t n =
  let s = Vec.get t.objs n in
  if s == obj_dummy then begin
    let s = Bitset.create () in
    Vec.set t.objs n s;
    s
  end
  else s

let in_id t n o =
  ignore (Bitset.add (objs_of t n) o);
  find_or_empty t.ins (n, o)

let out_id t n o = find_or_empty t.outs (n, o)

let union_in t n o src =
  let s = in_id t n o in
  let s' = Ptset.union s src in
  if Ptset.equal s' s then false
  else begin
    Hashtbl.replace t.ins (n, o) s';
    true
  end

let is_store t n = match Icfg.inst t.prog t.icfg n with Inst.Store _ -> true | _ -> false

(* A store only redefines the objects its pointer may target (those have an
   OUT entry); all other objects pass through its IN unchanged — except a
   statically strongly-updated object, which never passes through. *)
let out_for t n o =
  if is_store t n then
    if Hashtbl.find_opt t.su_obj n = Some o then out_id t n o
    else
      match Hashtbl.find_opt t.outs (n, o) with
      | Some s -> s
      | None -> in_id t n o
  else in_id t n o

let resolve_targets t = function
  | Inst.Direct f -> [ f ]
  | Inst.Indirect fp ->
    Bitset.fold
      (fun o acc ->
        match Prog.is_function_obj t.prog o with
        | Some f -> f :: acc
        | None -> acc)
      (pt_of t fp) []

let solve ?(strategy = `Fifo) prog (aux : Pta_memssa.Modref.aux) =
  let mr = Pta_memssa.Modref.compute prog aux in
  (* ICFG with no call edges: a call's fall-through successors act as the
     weak "around the call" path; call/return edges are added dynamically. *)
  let icfg = Icfg.build prog ~callees:(fun _ _ -> []) in
  let n = Array.length icfg.Icfg.nodes in
  let tel =
    Pta_engine.Telemetry.phase ~name:"dense.solve"
      ~scheduler:(Pta_engine.Scheduler.name strategy) ()
  in
  let t =
    {
      prog;
      icfg;
      mr;
      pt = Vec.create ~dummy:Ptset.empty ();
      ins = Hashtbl.create 1024;
      outs = Hashtbl.create 128;
      su_obj = Hashtbl.create 32;
      objs = Vec.create ~dummy:obj_dummy ();
      cg_fs = Callgraph.create ();
      callers = Hashtbl.create 16;
      tel;
    }
  in
  Vec.grow_to t.pt (Prog.n_vars prog);
  Vec.grow_to t.objs n;
  (* Precompute static strong-update sites. *)
  Prog.iter_funcs prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Store { ptr; _ } -> (
          let pts = aux.Pta_memssa.Modref.pt ptr in
          if Bitset.cardinal pts = 1 then
            match Bitset.choose pts with
            | Some o when Prog.is_singleton prog o ->
              Hashtbl.replace t.su_obj (Icfg.node_id icfg fn.Prog.id i) o
            | _ -> ())
        | _ -> ()
      done);
  (* [process] collects the nodes to revisit in [buf]; the engine schedules
     them ([`Topo] ranks ICFG nodes by SCC condensation of the static
     graph — call/return flow bypasses it, which only costs order). *)
  let buf = ref [] in
  let push nid = buf := nid :: !buf in
  (* users index for top-level variables *)
  let users : int list Vec.t = Vec.create ~dummy:[] () in
  Vec.grow_to users (Prog.n_vars prog);
  let note_user v nid = Vec.set users v (nid :: Vec.get users v) in
  Prog.iter_funcs prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        let nid = Icfg.node_id icfg fn.Prog.id i in
        let ins = Prog.inst fn i in
        List.iter (fun v -> note_user v nid) (Inst.uses ins);
        match (ins, fn.Prog.ret) with
        | Inst.Exit, Some r -> note_user r nid
        | _ -> ()
      done);
  let push_users v = List.iter push (Vec.get users v) in
  let prop_obj src dst o =
    if union_in t dst o (out_for t src o) then push dst
  in
  let prop_all src dst =
    Bitset.iter (fun o -> prop_obj src dst o) (objs_of t src)
  in
  let entry_of f =
    let fn = Prog.func prog f in
    Icfg.node_id icfg f fn.Prog.entry_inst
  in
  let exit_of f =
    let fn = Prog.func prog f in
    Icfg.node_id icfg f fn.Prog.exit_inst
  in
  let process nid =
    buf := [];
    let node = t.icfg.Icfg.nodes.(nid) in
    let fn = Prog.func prog node.Icfg.func in
    let ins = Prog.inst fn node.Icfg.inst in
    (* 1. Local transfer (top-level and memory). *)
    (match ins with
    | Inst.Alloc { lhs; obj } -> if add_pt t lhs obj then push_users lhs
    | Inst.Copy { lhs; rhs } -> if union_pt t lhs (pt_id t rhs) then push_users lhs
    | Inst.Phi { lhs; rhs } ->
      let changed = ref false in
      List.iter
        (fun r -> if union_pt t lhs (pt_id t r) then changed := true)
        rhs;
      if !changed then push_users lhs
    | Inst.Field { lhs; base; offset } ->
      let changed = ref false in
      Bitset.iter
        (fun o ->
          match Prog.obj_kind prog o with
          | Prog.Func _ -> ()
          | _ ->
            let fo = Prog.field_obj prog ~base:o ~offset in
            if add_pt t lhs fo then changed := true)
        (pt_of t base);
      if !changed then push_users lhs
    | Inst.Load { lhs; ptr } ->
      let changed = ref false in
      Bitset.iter
        (fun o ->
          if union_pt t lhs (in_id t nid o) then changed := true)
        (pt_of t ptr);
      if !changed then push_users lhs
    | Inst.Store { ptr; rhs } ->
      let rhs_id = pt_id t rhs in
      Bitset.iter
        (fun o ->
          ignore (Bitset.add (objs_of t nid) o);
          let out0 = out_id t nid o in
          let su = Hashtbl.find_opt t.su_obj nid = Some o in
          let out1 = Ptset.union out0 rhs_id in
          let out2 = if su then out1 else Ptset.union out1 (in_id t nid o) in
          if not (Ptset.equal out2 out0) then
            Hashtbl.replace t.outs (nid, o) out2)
        (pt_of t ptr)
    | Inst.Call { lhs; callee; args } ->
      let cs = { Callgraph.cs_func = node.Icfg.func; cs_inst = node.Icfg.inst } in
      let ret_sites =
        Bitset.fold
          (fun s acc -> Icfg.node_id icfg node.Icfg.func s :: acc)
          (Pta_graph.Digraph.succs fn.Prog.cfg node.Icfg.inst)
          []
      in
      List.iter
        (fun g ->
          if Callgraph.add t.cg_fs cs g then begin
            (match callee with
            | Inst.Indirect _ -> Callgraph.mark_indirect_target t.cg_fs g
            | Inst.Direct _ -> ());
            (match Hashtbl.find_opt t.callers g with
            | Some l -> l := (nid, ret_sites, lhs) :: !l
            | None -> Hashtbl.add t.callers g (ref [ (nid, ret_sites, lhs) ]));
            push (exit_of g)
          end;
          let callee_fn = Prog.func prog g in
          let rec zip args params =
            match (args, params) with
            | a :: args, p :: params ->
              if union_pt t p (pt_id t a) then push_users p;
              zip args params
            | _ -> ()
          in
          zip args callee_fn.Prog.params;
          (match (lhs, callee_fn.Prog.ret) with
          | Some l, Some r -> if union_pt t l (pt_id t r) then push_users l
          | _ -> ());
          (* memory in-flow into the callee entry *)
          let entry = entry_of g in
          let changed = ref false in
          Bitset.iter
            (fun o ->
              if Bitset.mem (objs_of t nid) o then
                if union_in t entry o (in_id t nid o) then changed := true)
            (Pta_memssa.Modref.inflow mr g);
          if !changed then push entry)
        (resolve_targets t callee)
    | Inst.Entry | Inst.Exit | Inst.Branch -> ());
    (* 2. Flow to CFG successors (for calls these are the weak around-call
       paths; for exits, to every discovered return site with the mods
       filter). *)
    (match ins with
    | Inst.Exit -> (
      let f = node.Icfg.func in
      (match fn.Prog.ret with
      | Some r ->
        (match Hashtbl.find_opt t.callers f with
        | Some l ->
          List.iter
            (fun (_, _, lhs) ->
              match lhs with
              | Some lhs ->
                if union_pt t lhs (pt_id t r) then push_users lhs
              | None -> ())
            !l
        | None -> ())
      | None -> ());
      match Hashtbl.find_opt t.callers f with
      | Some l ->
        List.iter
          (fun (_, ret_sites, _) ->
            Bitset.iter
              (fun o ->
                if Bitset.mem (objs_of t nid) o then
                  List.iter
                    (fun rs -> if union_in t rs o (in_id t nid o) then push rs)
                    ret_sites)
              (Pta_memssa.Modref.mods mr f))
          !l
      | None -> ())
    | _ ->
      Pta_graph.Digraph.iter_succs t.icfg.Icfg.graph nid (fun succ ->
          prop_all nid succ));
    !buf
  in
  let scheduler =
    match strategy with
    | `Topo ->
      let scc = Pta_graph.Scc.compute icfg.Icfg.graph in
      Pta_engine.Scheduler.make
        ~rank:(fun nid ->
          if nid < n then Pta_graph.Scc.rank_of_node scc nid else max_int)
        `Topo
    | `Wave ->
      (* The ICFG is static, so the level plan is exact (unlike the SVFG
         snapshot, which on-the-fly call edges can invalidate). *)
      let plan = Pta_graph.Wavefront.plan icfg.Icfg.graph in
      Pta_engine.Scheduler.make ~plan `Wave
    | (`Fifo | `Lifo | `Lrf) as s -> Pta_engine.Scheduler.make s
  in
  let eng = Pta_engine.Engine.create ~telemetry:tel ~scheduler ~process () in
  (* Seed: every node once. *)
  for i = 0 to n - 1 do
    Pta_engine.Engine.push eng i
  done;
  (match Pta_engine.Engine.run eng with
  | Pta_engine.Engine.Fixpoint -> ()
  | Pta_engine.Engine.Paused _ -> assert false (* unbudgeted *));
  t

let pt t v = pt_of t v
let callgraph t = t.cg_fs
let n_sets t = Hashtbl.length t.ins + Hashtbl.length t.outs

let words t =
  let tl = Ptset.Tally.create () in
  Hashtbl.iter (fun _ id -> Ptset.Tally.visit tl id) t.ins;
  Hashtbl.iter (fun _ id -> Ptset.Tally.visit tl id) t.outs;
  Ptset.Tally.shared_words tl

let telemetry t = t.tel
let processed t = t.tel.Pta_engine.Telemetry.pops
