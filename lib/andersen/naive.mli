(** Reference Andersen's solver: re-applies every constraint until nothing
    changes, with no cycle collapsing and no difference propagation.
    Quadratic and only meant as the oracle for differential tests of
    {!Solver}. *)

type result

val solve : Pta_ir.Prog.t -> result
val pts : result -> Pta_ir.Inst.var -> Pta_ds.Bitset.t
val callgraph : result -> Pta_ir.Callgraph.t

val telemetry : result -> Pta_engine.Telemetry.phase
(** Engine telemetry (phase ["naive.solve"]; pops = full sweeps). *)
