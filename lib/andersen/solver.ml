open Pta_ds
open Pta_ir
module Engine = Pta_engine.Engine
module Scheduler = Pta_engine.Scheduler
module Telemetry = Pta_engine.Telemetry

type complex = {
  (* [lhs = *p] constraints keyed by pointer [p] *)
  mutable load_lhss : Inst.var list;
  (* [*p = q] constraints keyed by pointer [p] *)
  mutable store_rhss : Inst.var list;
  (* [lhs = &p->k] constraints keyed by base [p] *)
  mutable geps : (Inst.var * int) list;
  (* indirect call sites whose function pointer is [p] *)
  mutable calls : (Callgraph.callsite * Inst.var option * Inst.var list) list;
  (* objects already expanded for this constraint-carrying variable *)
  mutable cdone : Ptset.t;
}

type state = {
  prog : Prog.t;
  uf : Union_find.t;
  pts : Ptset.t Vec.t;  (* authoritative at representatives *)
  prev : Ptset.t Vec.t;  (* what has been pushed to copy successors *)
  copy : Pta_graph.Digraph.t;
      (* copy edges, canonicalised at insertion; a collapse migrates the
         absorbed node's out-edges to the surviving representative, and
         edge *targets* are re-canonicalised at use — so walking the
         representatives' successor lists sees every live edge *)
  complex : (Inst.var, complex) Hashtbl.t;
  cg : Callgraph.t;
  mutable new_edges : (int * int) list;
      (* copy edges added since the last sync: their sources' already-
         propagated sets must be pushed across once in full, because
         difference propagation only ships future growth *)
  mutable changed : bool;
  mutable waves : int;
  tel : Telemetry.phase;
  merges : int ref;  (* telemetry extras, cached *)
  propagated : int ref;
  n_waves_tel : int ref;
}

type result = state

let ensure st v =
  Union_find.grow st.uf (v + 1);
  Vec.grow_to st.pts (v + 1);
  Vec.grow_to st.prev (v + 1);
  Pta_graph.Digraph.ensure st.copy (v + 1)

let pts_id st v = Vec.get st.pts (Union_find.find st.uf v)

let complex_of st v =
  match Hashtbl.find_opt st.complex v with
  | Some c -> c
  | None ->
    let c =
      { load_lhss = []; store_rhss = []; geps = []; calls = [];
        cdone = Ptset.empty }
    in
    Hashtbl.add st.complex v c;
    c

let add_copy st u w =
  let cu = Union_find.find st.uf u and cw = Union_find.find st.uf w in
  if cu <> cw then
    if Pta_graph.Digraph.add_edge st.copy cu cw then begin
      st.new_edges <- (cu, cw) :: st.new_edges;
      st.changed <- true
    end

let add_pt st v o =
  let r = Union_find.find st.uf v in
  let s = Vec.get st.pts r in
  let s' = Ptset.add s o in
  if not (Ptset.equal s' s) then begin
    Vec.set st.pts r s';
    st.changed <- true
  end

(* Engine-driven propagation grows [pts] without touching [changed]: growth
   inside a wave is re-examined by [expand_complex] at the wave's end, so
   only structural changes (new constraints, edges, merges) re-arm the
   outer loop. *)
let quiet_union st r src =
  let s = Vec.get st.pts r in
  let s' = Ptset.union s src in
  if Ptset.equal s' s then false
  else begin
    Vec.set st.pts r s';
    true
  end

(* ---------- constraint extraction ---------- *)

let link_call st ~(caller : Callgraph.callsite) ~lhs ~args fid =
  if Callgraph.add st.cg caller fid then st.changed <- true;
  let callee = Prog.func st.prog fid in
  let rec zip args params =
    match (args, params) with
    | a :: args, p :: params ->
      add_copy st a p;
      zip args params
    | _, _ -> ()
  in
  zip args callee.Prog.params;
  match (lhs, callee.Prog.ret) with
  | Some l, Some r -> add_copy st r l
  | _ -> ()

let extract st =
  Prog.iter_funcs st.prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Alloc { lhs; obj } ->
          ensure st (max lhs obj);
          add_pt st lhs obj
        | Inst.Copy { lhs; rhs } ->
          ensure st (max lhs rhs);
          add_copy st rhs lhs
        | Inst.Phi { lhs; rhs } ->
          ensure st lhs;
          List.iter
            (fun r ->
              ensure st r;
              add_copy st r lhs)
            rhs
        | Inst.Field { lhs; base; offset } ->
          ensure st (max lhs base);
          (complex_of st base).geps <- (lhs, offset) :: (complex_of st base).geps
        | Inst.Load { lhs; ptr } ->
          ensure st (max lhs ptr);
          (complex_of st ptr).load_lhss <- lhs :: (complex_of st ptr).load_lhss
        | Inst.Store { ptr; rhs } ->
          ensure st (max ptr rhs);
          (complex_of st ptr).store_rhss <- rhs :: (complex_of st ptr).store_rhss
        | Inst.Call { lhs; callee; args } -> (
          List.iter (ensure st) args;
          Option.iter (ensure st) lhs;
          let cs = { Callgraph.cs_func = fn.Prog.id; cs_inst = i } in
          match callee with
          | Inst.Direct fid -> link_call st ~caller:cs ~lhs ~args fid
          | Inst.Indirect fp ->
            ensure st fp;
            (complex_of st fp).calls <- (cs, lhs, args) :: (complex_of st fp).calls)
        | Inst.Entry | Inst.Exit | Inst.Branch -> ()
      done)

(* ---------- one wave ---------- *)

(* Merge every non-trivial SCC of the condensed copy graph and return the
   condensation, whose topological ranks drive the [`Topo] scheduler. The
   absorbed node's out-edges migrate to the surviving leader; its points-to
   union and [prev] intersection make the post-collapse seeding re-send
   whatever any merged party's successors may still be missing. *)
let collapse_sccs st =
  let n = Pta_graph.Digraph.n_nodes st.copy in
  (* Condensed view of the copy graph over current representatives. *)
  let canon = Pta_graph.Digraph.create ~n () in
  Pta_graph.Digraph.iter_edges st.copy (fun u w ->
      let cu = Union_find.find st.uf u and cw = Union_find.find st.uf w in
      if cu <> cw then ignore (Pta_graph.Digraph.add_edge canon cu cw));
  let scc = Pta_graph.Scc.compute canon in
  let leader = Array.make scc.Pta_graph.Scc.n_comps (-1) in
  for v = 0 to n - 1 do
    if Union_find.find st.uf v = v then begin
      let c = scc.Pta_graph.Scc.comp.(v) in
      if scc.Pta_graph.Scc.sizes.(c) > 1 then
        if leader.(c) = -1 then leader.(c) <- v
        else begin
          let l = leader.(c) in
          (* Keep [l] as representative; fold [v]'s data into it. *)
          let pv = Vec.get st.pts v and qv = Vec.get st.prev v in
          Union_find.union_into st.uf ~winner:l v;
          incr st.merges;
          Vec.set st.pts l (Ptset.union (Vec.get st.pts l) pv);
          (* [prev] must under-approximate what reached every successor of
             the merged node, so intersect. *)
          Vec.set st.prev l (Ptset.inter (Vec.get st.prev l) qv);
          (* Out-edges of [v] live on under [l]; targets are canonicalised
             when walked. (In-edges need nothing: their sources walk to
             [find v] = [l].) *)
          Pta_graph.Digraph.iter_succs st.copy v (fun w ->
              ignore (Pta_graph.Digraph.add_edge st.copy l w))
        end
    end
  done;
  (scc, canon)

(* A copy edge added after its source already propagated needs one full
   catch-up union (difference propagation only ships growth after the edge
   exists). Growth surfaces in the pts-vs-prev seeding scan that follows. *)
let sync_new_edges st =
  let edges = st.new_edges in
  st.new_edges <- [];
  List.iter
    (fun (u, w) ->
      let cu = Union_find.find st.uf u and cw = Union_find.find st.uf w in
      if cu <> cw then ignore (quiet_union st cw (Vec.get st.prev cu)))
    edges

(* Deferred GEPs.

   [lhs = &p->k] cannot materialise the field object while [expand_complex]
   is iterating [st.complex]: [Prog.field_obj] grows the variable table,
   and a mid-iteration [ensure]/[Hashtbl] mutation under the live iterator
   would be undefined. So the walk only records (lhs, base, offset)
   triples, and they are flushed after it.

   The ordering invariant: triples are consed (newest first) during the
   walk and the flush consumes the list as-is, i.e. in REVERSE discovery
   order. This is load-bearing — [Prog.field_obj] assigns the next free
   variable id to each first-seen (base, offset) pair, so the flush order
   fixes the numbering of every field object, and those ids are the very
   elements stored in points-to bitsets. Any run that is supposed to be
   comparable bit-for-bit (sequential vs pool-worker, cold vs warm,
   scheduler A vs B) must create field objects in the same order, so this
   order must never depend on scheduling, domain, or wave count — only on
   the walk order of [st.complex] (insertion-ordered hashing) and of each
   delta bitset (ascending). Do not "fix" the reversal: flipping it would
   renumber field objects and invalidate every persisted artifact and
   pinned regression expectation downstream. *)
let defer_gep todo ~lhs ~base ~offset = todo := (lhs, base, offset) :: !todo

let flush_deferred_geps st todo =
  List.iter
    (fun (lhs, o, k) ->
      let fo = Prog.field_obj st.prog ~base:o ~offset:k in
      ensure st fo;
      ensure st lhs;
      add_pt st lhs fo)
    !todo

let expand_complex st =
  let geps_todo = ref [] in
  Hashtbl.iter
    (fun v c ->
      let p = pts_id st v in
      let delta = Ptset.diff p c.cdone in
      if not (Ptset.is_empty delta) then begin
        c.cdone <- Ptset.union c.cdone delta;
        Ptset.iter
          (fun o ->
            (* [lhs = *p]: value flows from the object to lhs. *)
            List.iter (fun lhs -> add_copy st o lhs) c.load_lhss;
            (* [*p = q]: value flows from q into the object. *)
            List.iter (fun rhs -> add_copy st rhs o) c.store_rhss;
            (* [lhs = &p->k] *)
            if c.geps <> [] then begin
              match Prog.obj_kind st.prog o with
              | Prog.Func _ -> () (* no fields on functions *)
              | _ ->
                List.iter
                  (fun (lhs, k) -> defer_gep geps_todo ~lhs ~base:o ~offset:k)
                  c.geps
            end;
            (* indirect calls through p *)
            if c.calls <> [] then
              match Prog.is_function_obj st.prog o with
              | Some fid ->
                Callgraph.mark_indirect_target st.cg fid;
                List.iter
                  (fun (cs, lhs, args) -> link_call st ~caller:cs ~lhs ~args fid)
                  c.calls
              | None -> ())
          delta
      end)
    st.complex;
  flush_deferred_geps st geps_todo

let solve ?(strategy = `Topo) ?pre prog =
  let n = Prog.n_vars prog in
  let tel =
    Telemetry.phase ~name:"andersen.solve" ~scheduler:(Scheduler.name strategy)
      ()
  in
  let st =
    {
      prog;
      uf = Union_find.create (max n 1);
      pts = Vec.create ~dummy:Ptset.empty ();
      prev = Vec.create ~dummy:Ptset.empty ();
      copy = Pta_graph.Digraph.create ~n ();
      complex = Hashtbl.create 256;
      cg = Callgraph.create ();
      new_edges = [];
      changed = false;
      waves = 0;
      tel;
      merges = Telemetry.counter tel "scc_merges";
      propagated = Telemetry.counter tel "propagated";
      n_waves_tel = Telemetry.counter tel "waves";
    }
  in
  Vec.grow_to st.pts (max n 1);
  Vec.grow_to st.prev (max n 1);
  (* Unification pre-analysis seed: merge the offline copy-SCC partition
     before extraction. Leaders are the smallest member of each class —
     the same representative the first [collapse_sccs] would elect — so
     extraction canonicalises constraints onto identical representatives
     and the whole solve proceeds bit-for-bit as without the seed, minus
     the wave-1 merge work (intra-class copy edges are never even
     inserted). Exactness is the seed's contract; the [unify] fuzz oracle
     enforces it downstream. *)
  let pre_merged = Telemetry.counter tel "pre_merged" in
  (match pre with
  | None -> ()
  | Some p ->
    let m = min (Array.length p.Unify.leader) n in
    for v = 0 to m - 1 do
      let l = p.Unify.leader.(v) in
      if l <> v then begin
        Union_find.union_into st.uf ~winner:l v;
        incr pre_merged
      end
    done);
  extract st;
  (* The [`Topo] rank is the SCC-condensation rank of a node's current
     representative, refreshed every wave after the collapse; the Prio
     worklist re-reads it at pop, so merged nodes re-rank in place. *)
  let rank = ref [||] in
  let rank_of v =
    let r = !rank in
    if v < Array.length r then r.(v) else max_int
  in
  let scheduler =
    match strategy with
    (* [`Wave] also runs on the rank-revalidating Prio worklist: the
       constraint graph is rewritten between waves (collapses, new edges),
       so a static level plan would go stale — instead [rank] holds the
       wavefront level of each node's representative, refreshed per wave. *)
    | `Topo | `Wave -> Scheduler.make ~rank:rank_of `Topo
    | (`Fifo | `Lifo | `Lrf) as s -> Scheduler.make s
  in
  (* Difference propagation as the engine's transfer step: ship the part of
     [pts] that successors have not seen, record it in [prev], return the
     representatives that grew. Merges never happen while the engine runs,
     so [find] is stable within a wave. *)
  let process v =
    let r = Union_find.find st.uf v in
    let p = Vec.get st.pts r and q = Vec.get st.prev r in
    let diff = Ptset.diff p q in
    if Ptset.is_empty diff then []
    else begin
      Vec.set st.prev r (Ptset.union q p);
      st.propagated := !(st.propagated) + Ptset.cardinal diff;
      let out = ref [] in
      Pta_graph.Digraph.iter_succs st.copy r (fun w0 ->
          let w = Union_find.find st.uf w0 in
          if w <> r && quiet_union st w diff then out := w :: !out);
      !out
    end
  in
  let eng = Engine.create ~telemetry:tel ~scheduler ~process () in
  st.changed <- true;
  while st.changed do
    st.changed <- false;
    st.waves <- st.waves + 1;
    incr st.n_waves_tel;
    let scc, canon = collapse_sccs st in
    let m = Pta_graph.Digraph.n_nodes st.copy in
    rank :=
      (match strategy with
      | `Wave ->
        let plan = Pta_graph.Wavefront.plan canon in
        Array.init m (fun v ->
            Pta_graph.Wavefront.level_of_node plan (Union_find.find st.uf v))
      | _ ->
        Array.init m (fun v ->
            Pta_graph.Scc.rank_of_node scc (Union_find.find st.uf v)));
    sync_new_edges st;
    (* Seed every representative with unshipped facts. *)
    for v = 0 to m - 1 do
      if
        Union_find.find st.uf v = v
        && not (Ptset.equal (Vec.get st.pts v) (Vec.get st.prev v))
      then Engine.push eng v
    done;
    (match Engine.run eng with
    | Engine.Fixpoint -> ()
    | Engine.Paused _ -> assert false (* unbudgeted *));
    expand_complex st
  done;
  st

let pts st v = Ptset.view (pts_id st v)
let points_to st v o = Ptset.mem (pts_id st v) o
let callgraph st = st.cg
let rep st v = Union_find.find st.uf v
let n_waves st = st.waves
let pre_merged st = Telemetry.extra st.tel "pre_merged"
let telemetry st = st.tel
