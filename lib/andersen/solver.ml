open Pta_ds
open Pta_ir

type complex = {
  (* [lhs = *p] constraints keyed by pointer [p] *)
  mutable load_lhss : Inst.var list;
  (* [*p = q] constraints keyed by pointer [p] *)
  mutable store_rhss : Inst.var list;
  (* [lhs = &p->k] constraints keyed by base [p] *)
  mutable geps : (Inst.var * int) list;
  (* indirect call sites whose function pointer is [p] *)
  mutable calls : (Callgraph.callsite * Inst.var option * Inst.var list) list;
  (* objects already expanded for this constraint-carrying variable *)
  mutable cdone : Ptset.t;
}

type state = {
  prog : Prog.t;
  uf : Union_find.t;
  pts : Ptset.t Vec.t;  (* authoritative at representatives *)
  prev : Ptset.t Vec.t;  (* what has been pushed to copy successors *)
  copy : Pta_graph.Digraph.t;  (* copy edges over original variable ids *)
  complex : (Inst.var, complex) Hashtbl.t;
  cg : Callgraph.t;
  mutable changed : bool;
  mutable waves : int;
}

type result = state

let ensure st v =
  Union_find.grow st.uf (v + 1);
  Vec.grow_to st.pts (v + 1);
  Vec.grow_to st.prev (v + 1);
  Pta_graph.Digraph.ensure st.copy (v + 1)

let pts_id st v = Vec.get st.pts (Union_find.find st.uf v)
let prev_id st v = Vec.get st.prev (Union_find.find st.uf v)

let complex_of st v =
  match Hashtbl.find_opt st.complex v with
  | Some c -> c
  | None ->
    let c =
      { load_lhss = []; store_rhss = []; geps = []; calls = [];
        cdone = Ptset.empty }
    in
    Hashtbl.add st.complex v c;
    c

let add_copy st u w =
  if u <> w then
    if Pta_graph.Digraph.add_edge st.copy u w then st.changed <- true

let add_pt st v o =
  let r = Union_find.find st.uf v in
  let s = Vec.get st.pts r in
  let s' = Ptset.add s o in
  if not (Ptset.equal s' s) then begin
    Vec.set st.pts r s';
    st.changed <- true
  end

let union_pts st v src =
  let r = Union_find.find st.uf v in
  let s = Vec.get st.pts r in
  let s' = Ptset.union s src in
  if not (Ptset.equal s' s) then begin
    Vec.set st.pts r s';
    st.changed <- true
  end

(* ---------- constraint extraction ---------- *)

let link_call st ~(caller : Callgraph.callsite) ~lhs ~args fid =
  if Callgraph.add st.cg caller fid then st.changed <- true;
  let callee = Prog.func st.prog fid in
  let rec zip args params =
    match (args, params) with
    | a :: args, p :: params ->
      add_copy st a p;
      zip args params
    | _, _ -> ()
  in
  zip args callee.Prog.params;
  match (lhs, callee.Prog.ret) with
  | Some l, Some r -> add_copy st r l
  | _ -> ()

let extract st =
  Prog.iter_funcs st.prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Alloc { lhs; obj } ->
          ensure st (max lhs obj);
          add_pt st lhs obj
        | Inst.Copy { lhs; rhs } ->
          ensure st (max lhs rhs);
          add_copy st rhs lhs
        | Inst.Phi { lhs; rhs } ->
          ensure st lhs;
          List.iter
            (fun r ->
              ensure st r;
              add_copy st r lhs)
            rhs
        | Inst.Field { lhs; base; offset } ->
          ensure st (max lhs base);
          (complex_of st base).geps <- (lhs, offset) :: (complex_of st base).geps
        | Inst.Load { lhs; ptr } ->
          ensure st (max lhs ptr);
          (complex_of st ptr).load_lhss <- lhs :: (complex_of st ptr).load_lhss
        | Inst.Store { ptr; rhs } ->
          ensure st (max ptr rhs);
          (complex_of st ptr).store_rhss <- rhs :: (complex_of st ptr).store_rhss
        | Inst.Call { lhs; callee; args } -> (
          List.iter (ensure st) args;
          Option.iter (ensure st) lhs;
          let cs = { Callgraph.cs_func = fn.Prog.id; cs_inst = i } in
          match callee with
          | Inst.Direct fid -> link_call st ~caller:cs ~lhs ~args fid
          | Inst.Indirect fp ->
            ensure st fp;
            (complex_of st fp).calls <- (cs, lhs, args) :: (complex_of st fp).calls)
        | Inst.Entry | Inst.Exit | Inst.Branch -> ()
      done)

(* ---------- one wave ---------- *)

let collapse_sccs st =
  let n = Pta_graph.Digraph.n_nodes st.copy in
  (* Condensed view of the copy graph over current representatives. *)
  let canon = Pta_graph.Digraph.create ~n () in
  Pta_graph.Digraph.iter_edges st.copy (fun u w ->
      let cu = Union_find.find st.uf u and cw = Union_find.find st.uf w in
      if cu <> cw then ignore (Pta_graph.Digraph.add_edge canon cu cw));
  let scc = Pta_graph.Scc.compute canon in
  (* Merge every non-trivial component. *)
  let leader = Array.make scc.Pta_graph.Scc.n_comps (-1) in
  for v = 0 to n - 1 do
    if Union_find.find st.uf v = v then begin
      let c = scc.Pta_graph.Scc.comp.(v) in
      if scc.Pta_graph.Scc.sizes.(c) > 1 then
        if leader.(c) = -1 then leader.(c) <- v
        else begin
          let l = leader.(c) in
          (* Keep [l] as representative; fold [v]'s data into it. *)
          let pv = Vec.get st.pts v and qv = Vec.get st.prev v in
          Union_find.union_into st.uf ~winner:l v;
          Stats.incr "andersen.scc_merges";
          Vec.set st.pts l (Ptset.union (Vec.get st.pts l) pv);
          (* [prev] must under-approximate what reached every successor of
             the merged node, so intersect. *)
          Vec.set st.prev l (Ptset.inter (Vec.get st.prev l) qv)
        end
    end
  done;
  (canon, scc)

let propagate st (canon, scc) =
  let n = Pta_graph.Digraph.n_nodes canon in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      Int.compare (Pta_graph.Scc.rank_of_node scc a) (Pta_graph.Scc.rank_of_node scc b))
    order;
  Array.iter
    (fun v ->
      if Union_find.find st.uf v = v then begin
        let p = Vec.get st.pts v and q = Vec.get st.prev v in
        let diff = Ptset.diff p q in
        if not (Ptset.is_empty diff) then begin
          Vec.set st.prev v (Ptset.union q p);
          Stats.add "andersen.propagated" (Ptset.cardinal diff);
          Pta_graph.Digraph.iter_succs st.copy v (fun w0 ->
              let w = Union_find.find st.uf w0 in
              if w <> v then union_pts st w diff)
        end
      end)
    order;
  (* Stale edges from non-representatives still need their targets fed;
     canonicalise by also walking edges whose source is merged away. *)
  Pta_graph.Digraph.iter_edges st.copy (fun u w ->
      let cu = Union_find.find st.uf u and cw = Union_find.find st.uf w in
      if cu <> cw then union_pts st cw (prev_id st cu))

let expand_complex st =
  let geps_todo = ref [] in
  Hashtbl.iter
    (fun v c ->
      let p = pts_id st v in
      let delta = Ptset.diff p c.cdone in
      if not (Ptset.is_empty delta) then begin
        c.cdone <- Ptset.union c.cdone delta;
        Ptset.iter
          (fun o ->
            (* [lhs = *p]: value flows from the object to lhs. *)
            List.iter (fun lhs -> add_copy st o lhs) c.load_lhss;
            (* [*p = q]: value flows from q into the object. *)
            List.iter (fun rhs -> add_copy st rhs o) c.store_rhss;
            (* [lhs = &p->k] *)
            if c.geps <> [] then begin
              match Prog.obj_kind st.prog o with
              | Prog.Func _ -> () (* no fields on functions *)
              | _ ->
                List.iter
                  (fun (lhs, k) -> geps_todo := (lhs, o, k) :: !geps_todo)
                  c.geps
            end;
            (* indirect calls through p *)
            if c.calls <> [] then
              match Prog.is_function_obj st.prog o with
              | Some fid ->
                Callgraph.mark_indirect_target st.cg fid;
                List.iter
                  (fun (cs, lhs, args) -> link_call st ~caller:cs ~lhs ~args fid)
                  c.calls
              | None -> ())
          delta
      end)
    st.complex;
  (* Field-object creation grows the variable table; done outside the
     iteration over [st.complex]. *)
  List.iter
    (fun (lhs, o, k) ->
      let fo = Prog.field_obj st.prog ~base:o ~offset:k in
      ensure st fo;
      ensure st lhs;
      add_pt st lhs fo)
    !geps_todo

let solve prog =
  let n = Prog.n_vars prog in
  let st =
    {
      prog;
      uf = Union_find.create (max n 1);
      pts = Vec.create ~dummy:Ptset.empty ();
      prev = Vec.create ~dummy:Ptset.empty ();
      copy = Pta_graph.Digraph.create ~n ();
      complex = Hashtbl.create 256;
      cg = Callgraph.create ();
      changed = false;
      waves = 0;
    }
  in
  Vec.grow_to st.pts (max n 1);
  Vec.grow_to st.prev (max n 1);
  extract st;
  st.changed <- true;
  while st.changed do
    st.changed <- false;
    st.waves <- st.waves + 1;
    Stats.incr "andersen.waves";
    let condensed = collapse_sccs st in
    propagate st condensed;
    expand_complex st
  done;
  st

let pts st v = Ptset.view (pts_id st v)
let points_to st v o = Ptset.mem (pts_id st v) o
let callgraph st = st.cg
let rep st v = Union_find.find st.uf v
let n_waves st = st.waves
