(** Steensgaard-style unification-based points-to analysis — the cheapest
    tier of the solver lattice, and a pre-analysis seed for Andersen.

    Two exports, deliberately distinct:

    {2 Seed partition}

    {!seed_partition} computes mutual copy-reachability over the initial
    copy graph (Copy, Phi and direct-call bindings — exactly the edges
    Andersen's extraction inserts before any complex constraint expands).
    Non-trivial SCCs of that graph are merged by Andersen's first
    wave-collapse anyway, with the smallest member as representative;
    pre-merging the same partition (same leaders) via
    [Solver.solve ~pre] shrinks the constraint graph Andersen starts from
    while keeping the final results bit-for-bit identical. This is the
    exactness-preserving core of unification: anything coarser (the full
    Steensgaard classes below) would cost precision.

    {2 Full unification tier}

    {!solve} runs the classic near-linear analysis: one abstract pointee
    class per equivalence class, assignments unify pointees. Field
    address-of stays offset-aware — it binds the interned field object per
    (base, offset) rather than smashing fields into their base — which is
    what keeps classes from oversharing. The result is a sound
    over-approximation of Andersen (and hence of SFS/VSFS); it is never
    used for final answers, only as the cheap tier of [vsfs serve] and as
    a fuzzing oracle bound. Runs after Andersen and never allocates
    variables: unknown field objects fall back to their base object. *)

type partition = {
  leader : int array;
      (** var -> class leader (smallest member id); own id when alone *)
  merged : int;  (** variables folded into another leader *)
  classes : int;  (** [Array.length leader - merged] *)
}

val seed_partition : Pta_ir.Prog.t -> partition

type t
type result = t

val solve : Pta_ir.Prog.t -> t

val pts : t -> Pta_ir.Inst.var -> Pta_ds.Bitset.t
(** Object members of [v]'s pointee class (empty when [v] was never a
    pointer). Shared across the class — do not mutate. *)

val points_to : t -> Pta_ir.Inst.var -> Pta_ir.Inst.var -> bool

val n_classes : t -> int
(** Distinct equivalence classes over the program's variables. *)

val merges : t -> int
val passes : t -> int

val telemetry : t -> Pta_engine.Telemetry.phase
(** Phase ["unify.solve"] (extras [merges], [passes]). *)
