open Pta_ds
open Pta_ir
module Engine = Pta_engine.Engine
module Scheduler = Pta_engine.Scheduler
module Telemetry = Pta_engine.Telemetry

type result = {
  sets : (Inst.var, Ptset.t) Hashtbl.t;
  cg : Callgraph.t;
  tel : Telemetry.phase;
}

let pts_id r v =
  match Hashtbl.find_opt r.sets v with
  | Some s -> s
  | None ->
    Hashtbl.add r.sets v Ptset.empty;
    Ptset.empty

let pts r v = Ptset.view (pts_id r v)
let callgraph r = r.cg

let solve prog =
  let tel = Telemetry.phase ~name:"naive.solve" ~scheduler:"fifo" () in
  let r = { sets = Hashtbl.create 256; cg = Callgraph.create (); tel } in
  let changed = ref false in
  let union_into dst src =
    let s = pts_id r dst in
    let s' = Ptset.union s src in
    if not (Ptset.equal s' s) then begin
      Hashtbl.replace r.sets dst s';
      changed := true
    end
  in
  let add dst o =
    let s = pts_id r dst in
    let s' = Ptset.add s o in
    if not (Ptset.equal s' s) then begin
      Hashtbl.replace r.sets dst s';
      changed := true
    end
  in
  let apply_call fn i lhs callee args =
    let cs = { Callgraph.cs_func = fn.Prog.id; cs_inst = i } in
    let targets =
      match callee with
      | Inst.Direct fid -> [ fid ]
      | Inst.Indirect fp ->
        Ptset.fold
          (fun o acc ->
            match Prog.is_function_obj prog o with
            | Some fid ->
              Callgraph.mark_indirect_target r.cg fid;
              fid :: acc
            | None -> acc)
          (pts_id r fp) []
    in
    List.iter
      (fun fid ->
        if Callgraph.add r.cg cs fid then changed := true;
        let callee = Prog.func prog fid in
        let rec zip args params =
          match (args, params) with
          | a :: args, p :: params ->
            union_into p (pts_id r a);
            zip args params
          | _ -> ()
        in
        zip args callee.Prog.params;
        match (lhs, callee.Prog.ret) with
        | Some l, Some ret -> union_into l (pts_id r ret)
        | _ -> ())
      targets
  in
  let sweep () =
    Prog.iter_funcs prog (fun fn ->
        for i = 0 to Prog.n_insts fn - 1 do
          match Prog.inst fn i with
          | Inst.Alloc { lhs; obj } -> add lhs obj
          | Inst.Copy { lhs; rhs } -> union_into lhs (pts_id r rhs)
          | Inst.Phi { lhs; rhs } ->
            List.iter (fun x -> union_into lhs (pts_id r x)) rhs
          | Inst.Field { lhs; base; offset } ->
            (* interned sets are immutable, so iterating while extending
               [lhs] needs none of the defensive copies the mutable version
               took *)
            Ptset.iter
              (fun o ->
                match Prog.obj_kind prog o with
                | Prog.Func _ -> ()
                | _ -> add lhs (Prog.field_obj prog ~base:o ~offset))
              (pts_id r base)
          | Inst.Load { lhs; ptr } ->
            Ptset.iter (fun o -> union_into lhs (pts_id r o)) (pts_id r ptr)
          | Inst.Store { ptr; rhs } ->
            Ptset.iter (fun o -> union_into o (pts_id r rhs)) (pts_id r ptr)
          | Inst.Call { lhs; callee; args } -> apply_call fn i lhs callee args
          | Inst.Entry | Inst.Exit | Inst.Branch -> ()
        done)
  in
  (* Single-node engine domain: one "node" whose transfer is a full sweep,
     re-pushed while any set grew. Gets the naive oracle the same telemetry
     (sweeps = pops) and budget machinery as the real solvers for free. *)
  let process _ =
    changed := false;
    sweep ();
    if !changed then [ 0 ] else []
  in
  let eng =
    Engine.create ~telemetry:tel ~scheduler:(Scheduler.make `Fifo) ~process ()
  in
  Engine.push eng 0;
  (match Engine.run eng with
  | Engine.Fixpoint -> ()
  | Engine.Paused _ -> assert false (* unbudgeted *));
  r

let telemetry r = r.tel
