open Pta_ds
open Pta_ir
module Engine = Pta_engine.Engine
module Scheduler = Pta_engine.Scheduler
module Telemetry = Pta_engine.Telemetry

(* ---------- seed partition (pre-analysis for Andersen) ---------- *)

type partition = {
  leader : int array;  (* var -> class leader (smallest member); id if alone *)
  merged : int;
  classes : int;
}

(* Mutual copy-reachability over the *initial* copy graph: exactly the edges
   [Solver.extract] feeds [add_copy] before any complex constraint expands
   (Copy, Phi, direct-call argument/return bindings). Every non-trivial SCC
   of this graph is merged by Andersen's first [collapse_sccs] anyway, with
   the smallest-id member as the surviving representative — so seeding the
   same partition up front (same leaders, via [Union_find.union_into]) is
   exactness-preserving: the post-collapse solver state is identical and the
   final points-to results stay bit-for-bit equal. Anything coarser (full
   Steensgaard classes) would over-merge and lose Andersen precision. *)
let seed_partition prog =
  let n = Prog.n_vars prog in
  let g = Pta_graph.Digraph.create ~n:(max n 1) () in
  let edge u w = if u <> w then ignore (Pta_graph.Digraph.add_edge g u w) in
  Prog.iter_funcs prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Copy { lhs; rhs } -> edge rhs lhs
        | Inst.Phi { lhs; rhs } -> List.iter (fun r -> edge r lhs) rhs
        | Inst.Call { lhs; callee = Inst.Direct fid; args } -> (
          let callee = Prog.func prog fid in
          let rec zip args params =
            match (args, params) with
            | a :: args, p :: params ->
              edge a p;
              zip args params
            | _, _ -> ()
          in
          zip args callee.Prog.params;
          match (lhs, callee.Prog.ret) with
          | Some l, Some r -> edge r l
          | _ -> ())
        | _ -> ()
      done);
  let scc = Pta_graph.Scc.compute g in
  let leader = Array.init n (fun v -> v) in
  let first = Array.make (max scc.Pta_graph.Scc.n_comps 1) (-1) in
  let merged = ref 0 in
  for v = 0 to n - 1 do
    let c = scc.Pta_graph.Scc.comp.(v) in
    if scc.Pta_graph.Scc.sizes.(c) > 1 then
      if first.(c) = -1 then first.(c) <- v
      else begin
        leader.(v) <- first.(c);
        incr merged
      end
  done;
  { leader; merged = !merged; classes = n - !merged }

(* ---------- full unification points-to (a solver tier) ---------- *)

(* Steensgaard-style analysis: near-linear, flow- and context-insensitive,
   and much coarser than Andersen — every variable gets one abstract
   pointee node, and assignments *unify* pointees instead of adding
   inclusion edges. Runs after Andersen (it is the cheapest tier of the
   serve lattice), so it must never grow the variable id space: field
   address-of goes through {!Prog.field_obj_opt}, and a missing field
   object falls back to the base object, which only coarsens the result.
   Offset-awareness (distinct field objects stay distinct unless unified
   through flow) is what keeps the classes from oversharing entirely. *)

type t = {
  prog : Prog.t;
  uf : Union_find.t;  (* over n_vars program vars + synthetic pointee nodes *)
  pointee : int Vec.t;  (* node -> pointee node (-1 none); authoritative at
                           representatives, canonicalised on read *)
  mutable n_nodes : int;
  mutable sealed : (int, Bitset.t) Hashtbl.t option;
      (* pointee-class root -> member objects, built once after solving *)
  tel : Telemetry.phase;
  merges : int ref;
  passes : int ref;
}

type result = t

let find t x = Union_find.find t.uf x

let fresh_node t =
  let id = t.n_nodes in
  t.n_nodes <- id + 1;
  Union_find.grow t.uf t.n_nodes;
  Vec.grow_to t.pointee t.n_nodes;
  id

let pointee_of t r =
  match Vec.get t.pointee r with -1 -> -1 | p -> find t p

(* Unify two nodes, recursively unifying their pointees (worklist form so
   long deref chains cannot overflow the stack). *)
let unite t a b =
  let pending = ref [ (a, b) ] in
  while !pending <> [] do
    match !pending with
    | [] -> ()
    | (a, b) :: rest -> (
      pending := rest;
      let ra = find t a and rb = find t b in
      if ra <> rb then begin
        let pa = pointee_of t ra and pb = pointee_of t rb in
        let r = Union_find.union t.uf ra rb in
        incr t.merges;
        match (pa, pb) with
        | -1, p | p, -1 -> Vec.set t.pointee r p
        | pa, pb ->
          Vec.set t.pointee r pa;
          if pa <> pb then pending := (pa, pb) :: !pending
      end)
  done

(* The pointee node of [x]'s class, created on demand. *)
let deref t x =
  let r = find t x in
  match pointee_of t r with
  | -1 ->
    let p = fresh_node t in
    Vec.set t.pointee r p;
    p
  | p -> p

let solve prog =
  let n = Prog.n_vars prog in
  let tel = Telemetry.phase ~name:"unify.solve" ~scheduler:"fifo" () in
  let t =
    {
      prog;
      uf = Union_find.create (max n 1);
      pointee = Vec.create ~dummy:(-1) ();
      n_nodes = max n 1;
      sealed = None;
      tel;
      merges = Telemetry.counter tel "merges";
      passes = Telemetry.counter tel "passes";
    }
  in
  Vec.grow_to t.pointee t.n_nodes;
  (* Simple constraints are stable under later merges (unification is
     transparent through [find]), so one pass suffices; field address-of
     and indirect calls enumerate class members, so they re-run until no
     merge happens. *)
  let geps = ref [] and icalls = ref [] in
  Prog.iter_funcs prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Alloc { lhs; obj } -> unite t (deref t lhs) obj
        | Inst.Copy { lhs; rhs } -> unite t (deref t lhs) (deref t rhs)
        | Inst.Phi { lhs; rhs } ->
          List.iter (fun r -> unite t (deref t lhs) (deref t r)) rhs
        | Inst.Load { lhs; ptr } ->
          unite t (deref t lhs) (deref t (deref t ptr))
        | Inst.Store { ptr; rhs } ->
          unite t (deref t (deref t ptr)) (deref t rhs)
        | Inst.Field { lhs; base; offset } ->
          geps := (lhs, base, offset) :: !geps
        | Inst.Call { lhs; callee = Inst.Direct fid; args } -> (
          let callee = Prog.func prog fid in
          let rec zip args params =
            match (args, params) with
            | a :: args, p :: params ->
              unite t (deref t p) (deref t a);
              zip args params
            | _, _ -> ()
          in
          zip args callee.Prog.params;
          match (lhs, callee.Prog.ret) with
          | Some l, Some r -> unite t (deref t l) (deref t r)
          | _ -> ())
        | Inst.Call { lhs; callee = Inst.Indirect fp; args } ->
          icalls := (lhs, fp, args) :: !icalls
        | Inst.Entry | Inst.Exit | Inst.Branch -> ()
      done);
  let geps = !geps and icalls = !icalls in
  (* One fixpoint pass over the member-enumerating constraints: for every
     object currently in the pointee class of the base / function pointer,
     bind the field object (or the base object when no field object was
     ever materialised) / the callee signature. Buckets are recomputed per
     pass — merges are bounded by the node count, so so are passes. *)
  let members_of () =
    let h = Hashtbl.create 64 in
    for v = 0 to n - 1 do
      if Prog.is_object prog v then begin
        let r = find t v in
        Hashtbl.replace h r (v :: (try Hashtbl.find h r with Not_found -> []))
      end
    done;
    h
  in
  let one_pass () =
    incr t.passes;
    let before = !(t.merges) in
    let buckets = members_of () in
    let objects_in p =
      match Hashtbl.find_opt buckets (find t p) with
      | Some os -> os
      | None -> []
    in
    List.iter
      (fun (lhs, base, offset) ->
        List.iter
          (fun o ->
            match Prog.obj_kind prog o with
            | Prog.Func _ -> ()
            | _ -> (
              match Prog.field_obj_opt prog ~base:o ~offset with
              | Some f -> unite t (deref t lhs) f
              | None -> unite t (deref t lhs) o))
          (objects_in (deref t base)))
      geps;
    List.iter
      (fun (lhs, fp, args) ->
        List.iter
          (fun o ->
            match Prog.is_function_obj prog o with
            | None -> ()
            | Some fid -> (
              let callee = Prog.func prog fid in
              let rec zip args params =
                match (args, params) with
                | a :: args, p :: params ->
                  unite t (deref t p) (deref t a);
                  zip args params
                | _, _ -> ()
              in
              zip args callee.Prog.params;
              match (lhs, callee.Prog.ret) with
              | Some l, Some r -> unite t (deref t l) (deref t r)
              | _ -> ()))
          (objects_in (deref t fp)))
      icalls;
    !(t.merges) > before
  in
  (* Drive the pass loop as a single-node engine client so the unify tier
     reports pops/steps/wall like every other solver. *)
  let process _ = if one_pass () then [ 0 ] else [] in
  let eng =
    Engine.create ~telemetry:tel ~scheduler:(Scheduler.make `Fifo) ~process ()
  in
  Engine.push eng 0;
  (match Engine.run eng with
  | Engine.Fixpoint -> ()
  | Engine.Paused _ -> assert false (* unbudgeted *));
  t

let seal t =
  match t.sealed with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 64 in
    let n = Prog.n_vars t.prog in
    for v = 0 to n - 1 do
      if Prog.is_object t.prog v then begin
        let r = find t v in
        let s =
          match Hashtbl.find_opt h r with
          | Some s -> s
          | None ->
            let s = Bitset.create () in
            Hashtbl.add h r s;
            s
        in
        ignore (Bitset.add s v)
      end
    done;
    t.sealed <- Some h;
    h

let empty = Bitset.create ()

let pts t v =
  if v < 0 || v >= Prog.n_vars t.prog then empty
  else
    match pointee_of t (find t v) with
    | -1 -> empty
    | p -> (
      match Hashtbl.find_opt (seal t) (find t p) with
      | Some s -> s
      | None -> empty)

let points_to t v o = Bitset.mem (pts t v) o

let n_classes t =
  let n = Prog.n_vars t.prog in
  let c = ref 0 in
  for v = 0 to n - 1 do
    if find t v = v then incr c
  done;
  !c

let merges t = !(t.merges)
let passes t = !(t.passes)
let telemetry t = t.tel
