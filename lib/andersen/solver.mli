(** Andersen's inclusion-based points-to analysis.

    This is the auxiliary analysis of the paper (§II-B): sound,
    flow-insensitive, field-sensitive, with an on-the-fly call graph. Its
    results drive memory-SSA construction, SVFG building, mod/ref summaries
    and the δ-node classification; the flow-sensitive solvers then compute
    strictly more precise points-to sets.

    The implementation is wave propagation: repeat (collapse copy-edge SCCs
    with a union-find; propagate difference sets on {!Pta_engine.Engine};
    expand complex constraints — loads, stores, field address-of, indirect
    calls) until fixpoint. The default [`Topo] strategy ranks each node by
    the SCC-condensation rank of its current representative, refreshed after
    every collapse — the worklist's rank-at-pop revalidation makes mid-solve
    merges re-prioritise queued nodes in place. *)

type result

val solve :
  ?strategy:Pta_engine.Scheduler.strategy -> ?pre:Unify.partition ->
  Pta_ir.Prog.t -> result
(** [pre] seeds the union-find with a {!Unify.seed_partition}: the
    partition's classes start merged (leader as representative), so
    intra-class copy edges are never inserted and wave 1 skips their
    collapse. The partition is exactness-preserving by construction —
    results are bit-identical with and without it. *)

val pts : result -> Pta_ir.Inst.var -> Pta_ds.Bitset.t
(** Points-to set (object ids) of a variable. Do not mutate. *)

val pts_id : result -> Pta_ir.Inst.var -> Pta_ds.Ptset.t
(** The interned id behind {!pts} — lets large-scale consumers digest or
    tally results (e.g. via {!Pta_ds.Ptset.content_hash}) without
    materialising a flat view per variable. Domain-local like every
    [Ptset.t]. *)

val points_to : result -> Pta_ir.Inst.var -> Pta_ir.Inst.var -> bool

val callgraph : result -> Pta_ir.Callgraph.t
(** On-the-fly call graph (direct edges included). *)

val rep : result -> Pta_ir.Inst.var -> Pta_ir.Inst.var
(** Cycle-collapsing representative (exposed for tests/diagnostics). *)

val n_waves : result -> int

val pre_merged : result -> int
(** Constraint-graph nodes merged by the [pre] seed (0 without one). *)

val telemetry : result -> Pta_engine.Telemetry.phase
(** Engine telemetry (phase ["andersen.solve"]; extras [waves],
    [scc_merges], [propagated]). *)
