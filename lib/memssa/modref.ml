open Pta_ds
open Pta_ir

type aux = { pt : Inst.var -> Bitset.t; cg : Callgraph.t }

type t = { mods : Bitset.t array; refs : Bitset.t array; inflows : Bitset.t array }

let compute prog aux =
  let nf = Prog.n_funcs prog in
  let mods = Array.init nf (fun _ -> Bitset.create ()) in
  let refs = Array.init nf (fun _ -> Bitset.create ()) in
  (* Local contributions. *)
  Prog.iter_funcs prog (fun fn ->
      let f = fn.Prog.id in
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Store { ptr; _ } ->
          ignore (Bitset.union_into ~into:mods.(f) (aux.pt ptr))
        | Inst.Load { ptr; _ } ->
          ignore (Bitset.union_into ~into:refs.(f) (aux.pt ptr))
        | _ -> ()
      done);
  (* Transitive closure over the call graph: iterate until stable. The call
     graph is small (one node per function), so a simple fixpoint is fine. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Prog.iter_funcs prog (fun fn ->
        let f = fn.Prog.id in
        Callgraph.iter_callsites_of aux.cg f (fun cs ->
            List.iter
              (fun g ->
                if Bitset.union_into ~into:mods.(f) mods.(g) then changed := true;
                if Bitset.union_into ~into:refs.(f) refs.(g) then changed := true)
              (Callgraph.targets aux.cg cs)))
  done;
  let inflows = Array.init nf (fun f -> Bitset.union refs.(f) mods.(f)) in
  { mods; refs; inflows }

let mods t f = t.mods.(f)
let refs t f = t.refs.(f)
let inflow t f = t.inflows.(f)

let export t = (t.mods, t.refs)

let import ~mods ~refs =
  if Array.length mods <> Array.length refs then
    invalid_arg "Modref.import: length mismatch";
  let inflows = Array.init (Array.length mods) (fun f -> Bitset.union refs.(f) mods.(f)) in
  { mods; refs; inflows }
