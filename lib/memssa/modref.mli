(** Interprocedural mod/ref summaries.

    For every function, the sets of address-taken objects it may write
    ([mods]) or read ([refs]), directly or through callees (fixpoint over the
    auxiliary call graph). These drive the χ/μ annotation of call sites and
    function boundaries in memory-SSA construction (§II-B of the paper). *)

type aux = {
  pt : Pta_ir.Inst.var -> Pta_ds.Bitset.t;
      (** auxiliary (Andersen) points-to results *)
  cg : Pta_ir.Callgraph.t;  (** auxiliary call graph *)
}

type t

val compute : Pta_ir.Prog.t -> aux -> t

val mods : t -> Pta_ir.Inst.func_id -> Pta_ds.Bitset.t
(** Objects possibly stored to by the function or its transitive callees. *)

val refs : t -> Pta_ir.Inst.func_id -> Pta_ds.Bitset.t
(** Objects possibly loaded from, transitively. *)

val inflow : t -> Pta_ir.Inst.func_id -> Pta_ds.Bitset.t
(** [refs ∪ mods] — the objects whose incoming value the function needs
    (mods are included because weak updates read the previous value). *)

val export : t -> Pta_ds.Bitset.t array * Pta_ds.Bitset.t array
(** [(mods, refs)] indexed by function id, for serialization. The arrays are
    the live internal state — treat as read-only. *)

val import : mods:Pta_ds.Bitset.t array -> refs:Pta_ds.Bitset.t array -> t
(** Rebuild from exported [(mods, refs)]; inflows are recomputed.
    @raise Invalid_argument on length mismatch. *)
