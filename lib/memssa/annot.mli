(** χ/μ annotations (§II-B).

    Every instruction that may define an address-taken object gets a χ for
    it, every instruction that may use one gets a μ, computed from the
    auxiliary analysis:
    - STORE [*p = q]: χ(o) for each o ∈ pt_aux(p);
    - LOAD [p = *q]: μ(o) for each o ∈ pt_aux(q);
    - CALL: μ(o) for objects flowing into any auxiliary callee
      (ref ∪ mod), and χ(o) for objects any callee may modify (mod);
    - FUNENTRY: χ(o) for o ∈ ref(f) ∪ mod(f) (the formal-in set);
    - FUNEXIT: μ(o) for o ∈ mod(f) (the formal-out set). *)

type t

val compute : Pta_ir.Prog.t -> Modref.aux -> Modref.t -> t

val mu : t -> Pta_ir.Inst.func_id -> int -> Pta_ds.Bitset.t
(** Objects with a μ at the instruction (loads and calls). *)

val chi : t -> Pta_ir.Inst.func_id -> int -> Pta_ds.Bitset.t
(** Objects with a χ at the instruction (stores and calls). *)

val entry_chi : t -> Pta_ir.Inst.func_id -> Pta_ds.Bitset.t
val exit_mu : t -> Pta_ir.Inst.func_id -> Pta_ds.Bitset.t

val export :
  t ->
  Pta_ds.Bitset.t array array
  * Pta_ds.Bitset.t array array
  * Pta_ds.Bitset.t array
  * Pta_ds.Bitset.t array
(** [(mu, chi, entry_chis, exit_mus)], each outer array indexed by function
    id and the inner ones by instruction id — the live internal state, for
    serialization; treat as read-only. *)

val import :
  mu:Pta_ds.Bitset.t array array ->
  chi:Pta_ds.Bitset.t array array ->
  entry_chis:Pta_ds.Bitset.t array ->
  exit_mus:Pta_ds.Bitset.t array ->
  t
(** Rebuild from exported state. @raise Invalid_argument on length
    mismatch. *)
