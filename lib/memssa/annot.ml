open Pta_ds
open Pta_ir

type t = {
  mu : Bitset.t array array;
  chi : Bitset.t array array;
  entry_chis : Bitset.t array;
  exit_mus : Bitset.t array;
}

let empty = Bitset.create ()

let compute prog (aux : Modref.aux) mr =
  let nf = Prog.n_funcs prog in
  let mu = Array.make nf [||] and chi = Array.make nf [||] in
  Prog.iter_funcs prog (fun fn ->
      let f = fn.Prog.id in
      let n = Prog.n_insts fn in
      mu.(f) <- Array.make n empty;
      chi.(f) <- Array.make n empty;
      for i = 0 to n - 1 do
        match Prog.inst fn i with
        | Inst.Store { ptr; _ } -> chi.(f).(i) <- aux.Modref.pt ptr
        | Inst.Load { ptr; _ } -> mu.(f).(i) <- aux.Modref.pt ptr
        | Inst.Call _ ->
          let cs = { Callgraph.cs_func = f; cs_inst = i } in
          let targets = Callgraph.targets aux.Modref.cg cs in
          if targets <> [] then begin
            let m = Bitset.create () and u = Bitset.create () in
            List.iter
              (fun g ->
                ignore (Bitset.union_into ~into:u (Modref.inflow mr g));
                ignore (Bitset.union_into ~into:m (Modref.mods mr g)))
              targets;
            mu.(f).(i) <- u;
            chi.(f).(i) <- m
          end
        | _ -> ()
      done);
  let entry_chis = Array.init nf (fun f -> Modref.inflow mr f) in
  let exit_mus = Array.init nf (fun f -> Modref.mods mr f) in
  { mu; chi; entry_chis; exit_mus }

let export t = (t.mu, t.chi, t.entry_chis, t.exit_mus)

let import ~mu ~chi ~entry_chis ~exit_mus =
  let nf = Array.length mu in
  if Array.length chi <> nf || Array.length entry_chis <> nf
     || Array.length exit_mus <> nf
  then invalid_arg "Annot.import: length mismatch";
  { mu; chi; entry_chis; exit_mus }

let mu t f i = t.mu.(f).(i)
let chi t f i = t.chi.(f).(i)
let entry_chi t f = t.entry_chis.(f)
let exit_mu t f = t.exit_mus.(f)
