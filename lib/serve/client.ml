module Codec = Pta_store.Codec

let connect ?(retries = 0) ?(retry_delay = 0.1) socket =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf retry_delay;
      go (attempt + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go 0

let request fd req =
  Protocol.write_frame fd (Protocol.encode_request req);
  match Protocol.read_frame fd with
  | Some body -> Protocol.decode_reply body
  | None -> raise (Codec.Corrupt "server closed the connection without a reply")

let with_connection ?retries ?retry_delay socket f =
  let fd = connect ?retries ?retry_delay socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)
