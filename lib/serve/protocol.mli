(** The daemon's wire protocol: length-prefixed binary frames over a Unix
    domain socket.

    Frame layout: {v magic "PTAQ" | varint body length | body v} with the
    varint and every body field in {!Pta_store.Codec} encoding. Bodies are
    tagged unions ({!request} one way, {!reply} the other); one frame
    carries exactly one of them. Anything malformed — wrong magic, runaway
    or oversized length, truncation, an unknown tag, trailing bytes —
    raises {!Pta_store.Codec.Corrupt}; the server answers with {!Error} and
    drops the connection, it never dies. *)

val magic : string

val max_frame : int
(** Hard bound on a frame body (64 MiB): a garbage length prefix must not
    provoke a giant allocation. *)

type tier = Unify | Andersen | Exact
(** The solver lattice's precision/cost ladder, cheapest first. A query
    names the least precise tier it accepts; the daemon answers from that
    tier's snapshot (unification classes / Andersen's flow-insensitive
    sets / the flow-sensitive SFS results) and echoes the tier served. *)

val tier_name : tier -> string
val tier_of_name : string -> tier option

type query =
  | Points_to of string  (** set of objects the named var/object points to *)
  | May_alias of string * string  (** do the two points-to sets intersect *)
  | Points_to_null of string  (** empty points-to set (may be null) *)
  | Callees of string  (** functions bound in the var's points-to set *)

type request =
  | Query of tier * query list  (** batched; answered in order *)
  | Vars  (** every queryable variable/object name *)
  | Report  (** the [analyze] default report: global objects' contents *)
  | Stats  (** daemon/session counters as printable pairs *)
  | Reload of string option  (** re-analyse: same file, or a new path *)
  | Shutdown

type answer =
  | Set of string list
  | Bool of bool
  | Unknown of string  (** no variable of that name *)

type reload_info = {
  r_total : int;
  r_reused : int;  (** functions spliced from the store, not re-solved *)
  r_dirty : int;
  r_scheduled : int;  (** SVFG nodes initially queued *)
  r_pops : int;  (** engine pops the re-solve actually took *)
  r_spliceable : bool;
  r_warm_build : bool;  (** program + Andersen came from the store *)
}

type reply =
  | Answers of tier * answer list  (** the tier that actually answered *)
  | Names of string list
  | Report_r of (string * string list) list
  | Stats_r of (string * string) list
  | Reloaded of reload_info
  | Shutting_down
  | Error of string

val encode_request : request -> string
val decode_request : string -> request
val encode_reply : reply -> string
val decode_reply : string -> reply

val write_frame : Unix.file_descr -> string -> unit
(** Frame and send one body. @raise Invalid_argument beyond {!max_frame}. *)

val read_frame : Unix.file_descr -> string option
(** One frame's body; [None] on clean end-of-stream (peer closed between
    frames). @raise Pta_store.Codec.Corrupt on malformed or truncated
    input. *)
