module Codec = Pta_store.Codec

(* Per-request dispatch. Never raises: failures become [Error] replies. *)
let handle session req =
  match req with
  | Protocol.Query (tier, qs) ->
    Protocol.Answers (tier, Session.answers ~tier session qs)
  | Protocol.Vars -> Protocol.Names (Session.var_names session)
  | Protocol.Report -> Protocol.Report_r (Session.report session)
  | Protocol.Stats -> Protocol.Stats_r (Session.stats session)
  | Protocol.Reload path -> (
    match Session.reload session ?path () with
    | Ok info -> Protocol.Reloaded info
    | Error msg -> Protocol.Error ("reload failed: " ^ msg))
  | Protocol.Shutdown -> Protocol.Shutting_down

let send fd reply = Protocol.write_frame fd (Protocol.encode_reply reply)

(* Serve one connection until the peer closes, a frame is malformed, or a
   shutdown request arrives. Returns [true] to keep accepting. *)
let serve_connection session fd =
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> true
    | Some body -> (
      match Protocol.decode_request body with
      | exception Codec.Corrupt msg ->
        (* a broken client must not take the daemon down: answer once,
           drop the connection, keep serving everyone else *)
        send fd (Protocol.Error ("malformed request: " ^ msg));
        true
      | Protocol.Shutdown ->
        send fd Protocol.Shutting_down;
        false
      | req ->
        let reply =
          try handle session req
          with e -> Protocol.Error (Printexc.to_string e)
        in
        send fd reply;
        loop ())
  in
  try loop () with
  | Codec.Corrupt _ -> true
  | Unix.Unix_error _ | Sys_error _ -> true

let run ~socket session =
  (* a leftover socket file from a crashed daemon would make [bind] fail;
     the daemon owns its path, so reclaim it *)
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (* a client vanishing mid-reply must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 16;
      let rec accept_loop () =
        match Unix.accept fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | conn, _ ->
          let continue =
            Fun.protect
              ~finally:(fun () ->
                try Unix.close conn with Unix.Unix_error _ -> ())
              (fun () -> serve_connection session conn)
          in
          if continue then accept_loop ()
      in
      accept_loop ())
