(** The daemon's accept loop: one Unix domain socket, one connection served
    at a time (requests on one connection are answered in order).

    Robustness contract: a malformed frame gets an [Error] reply and its
    connection dropped; a client disappearing mid-reply is ignored (SIGPIPE
    is disabled); only a well-formed [Shutdown] request — after its
    [Shutting_down] reply is sent — ends the loop. The socket file is
    reclaimed on startup (a crashed predecessor's leftover) and unlinked on
    the way out. *)

val run : socket:string -> Session.t -> unit
(** Serve until a [Shutdown] request. @raise Unix.Unix_error if the socket
    cannot be bound. *)

val serve_connection : Session.t -> Unix.file_descr -> bool
(** One connection's request loop (exposed for tests); [false] iff a
    shutdown was requested. *)
