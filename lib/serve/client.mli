(** Client side of the daemon protocol: connect, send one request, read one
    reply. *)

val connect :
  ?retries:int -> ?retry_delay:float -> string -> Unix.file_descr
(** Connect to the daemon's socket. [retries] (default 0) extra attempts
    are made [retry_delay] (default 0.1s) apart while the socket is absent
    or refusing — the window in which a freshly started daemon is still
    solving its program. @raise Unix.Unix_error once attempts run out. *)

val request : Unix.file_descr -> Protocol.request -> Protocol.reply
(** Send one request, wait for its reply. @raise Pta_store.Codec.Corrupt on
    a malformed or missing reply. *)

val with_connection :
  ?retries:int -> ?retry_delay:float -> string ->
  (Unix.file_descr -> 'a) -> 'a
(** [connect] / run / close, exception-safe. *)
