module Codec = Pta_store.Codec

let magic = "PTAQ"
let max_frame = 64 * 1024 * 1024

type tier = Unify | Andersen | Exact

let tier_name = function
  | Unify -> "unify"
  | Andersen -> "andersen"
  | Exact -> "exact"

let tier_of_name = function
  | "unify" -> Some Unify
  | "andersen" -> Some Andersen
  | "exact" -> Some Exact
  | _ -> None

type query =
  | Points_to of string
  | May_alias of string * string
  | Points_to_null of string
  | Callees of string

type request =
  | Query of tier * query list
  | Vars
  | Report
  | Stats
  | Reload of string option
  | Shutdown

type answer = Set of string list | Bool of bool | Unknown of string

type reload_info = {
  r_total : int;
  r_reused : int;
  r_dirty : int;
  r_scheduled : int;
  r_pops : int;
  r_spliceable : bool;
  r_warm_build : bool;
}

type reply =
  | Answers of tier * answer list
  | Names of string list
  | Report_r of (string * string list) list
  | Stats_r of (string * string) list
  | Reloaded of reload_info
  | Shutting_down
  | Error of string

(* ---------- bodies ---------- *)

let add_tier b t =
  Codec.add_uint b (match t with Unify -> 0 | Andersen -> 1 | Exact -> 2)

let tier d =
  match Codec.uint d with
  | 0 -> Unify
  | 1 -> Andersen
  | 2 -> Exact
  | t -> raise (Codec.Corrupt (Printf.sprintf "tier tag %d" t))

let add_query b = function
  | Points_to n ->
    Codec.add_uint b 0;
    Codec.add_string b n
  | May_alias (x, y) ->
    Codec.add_uint b 1;
    Codec.add_string b x;
    Codec.add_string b y
  | Points_to_null n ->
    Codec.add_uint b 2;
    Codec.add_string b n
  | Callees n ->
    Codec.add_uint b 3;
    Codec.add_string b n

let query d =
  match Codec.uint d with
  | 0 -> Points_to (Codec.string d)
  | 1 ->
    let x = Codec.string d in
    let y = Codec.string d in
    May_alias (x, y)
  | 2 -> Points_to_null (Codec.string d)
  | 3 -> Callees (Codec.string d)
  | t -> raise (Codec.Corrupt (Printf.sprintf "query tag %d" t))

let encode_request req =
  let b = Buffer.create 64 in
  (match req with
  | Query (t, qs) ->
    Codec.add_uint b 0;
    add_tier b t;
    Codec.add_list add_query b qs
  | Vars -> Codec.add_uint b 1
  | Report -> Codec.add_uint b 2
  | Stats -> Codec.add_uint b 3
  | Reload p ->
    Codec.add_uint b 4;
    Codec.add_option Codec.add_string b p
  | Shutdown -> Codec.add_uint b 5);
  Buffer.contents b

let decode_request bytes =
  let d = Codec.of_string bytes in
  let req =
    match Codec.uint d with
    | 0 ->
      let t = tier d in
      Query (t, Codec.list query d)
    | 1 -> Vars
    | 2 -> Report
    | 3 -> Stats
    | 4 -> Reload (Codec.option Codec.string d)
    | 5 -> Shutdown
    | t -> raise (Codec.Corrupt (Printf.sprintf "request tag %d" t))
  in
  Codec.expect_end d;
  req

let add_answer b = function
  | Set names ->
    Codec.add_uint b 0;
    Codec.add_list Codec.add_string b names
  | Bool v ->
    Codec.add_uint b 1;
    Codec.add_bool b v
  | Unknown n ->
    Codec.add_uint b 2;
    Codec.add_string b n

let answer d =
  match Codec.uint d with
  | 0 -> Set (Codec.list Codec.string d)
  | 1 -> Bool (Codec.bool d)
  | 2 -> Unknown (Codec.string d)
  | t -> raise (Codec.Corrupt (Printf.sprintf "answer tag %d" t))

let add_pair b (k, v) =
  Codec.add_string b k;
  Codec.add_string b v

let pair d =
  let k = Codec.string d in
  let v = Codec.string d in
  (k, v)

let add_row b (k, vs) =
  Codec.add_string b k;
  Codec.add_list Codec.add_string b vs

let row d =
  let k = Codec.string d in
  let vs = Codec.list Codec.string d in
  (k, vs)

let encode_reply reply =
  let b = Buffer.create 256 in
  (match reply with
  | Answers (t, ans) ->
    Codec.add_uint b 0;
    add_tier b t;
    Codec.add_list add_answer b ans
  | Names ns ->
    Codec.add_uint b 1;
    Codec.add_list Codec.add_string b ns
  | Report_r rows ->
    Codec.add_uint b 2;
    Codec.add_list add_row b rows
  | Stats_r kvs ->
    Codec.add_uint b 3;
    Codec.add_list add_pair b kvs
  | Reloaded i ->
    Codec.add_uint b 4;
    Codec.add_uint b i.r_total;
    Codec.add_uint b i.r_reused;
    Codec.add_uint b i.r_dirty;
    Codec.add_uint b i.r_scheduled;
    Codec.add_uint b i.r_pops;
    Codec.add_bool b i.r_spliceable;
    Codec.add_bool b i.r_warm_build
  | Shutting_down -> Codec.add_uint b 5
  | Error msg ->
    Codec.add_uint b 6;
    Codec.add_string b msg);
  Buffer.contents b

let decode_reply bytes =
  let d = Codec.of_string bytes in
  let reply =
    match Codec.uint d with
    | 0 ->
      let t = tier d in
      Answers (t, Codec.list answer d)
    | 1 -> Names (Codec.list Codec.string d)
    | 2 -> Report_r (Codec.list row d)
    | 3 -> Stats_r (Codec.list pair d)
    | 4 ->
      let r_total = Codec.uint d in
      let r_reused = Codec.uint d in
      let r_dirty = Codec.uint d in
      let r_scheduled = Codec.uint d in
      let r_pops = Codec.uint d in
      let r_spliceable = Codec.bool d in
      let r_warm_build = Codec.bool d in
      Reloaded
        { r_total; r_reused; r_dirty; r_scheduled; r_pops; r_spliceable;
          r_warm_build }
    | 5 -> Shutting_down
    | 6 -> Error (Codec.string d)
    | t -> raise (Codec.Corrupt (Printf.sprintf "reply tag %d" t))
  in
  Codec.expect_end d;
  reply

(* ---------- framing ---------- *)

(* [magic | varint length | body] — the length varint is read byte-by-byte
   off the socket (LEB128, at most 10 bytes), everything after it in one
   exact read. *)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd bytes pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (pos + n) (len - n)
  end

let write_frame fd body =
  if String.length body > max_frame then
    invalid_arg "Protocol.write_frame: frame too large";
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b magic;
  Codec.add_uint b (String.length body);
  Buffer.add_string b body;
  let s = Buffer.contents b in
  write_all fd s 0 (String.length s)

let rec read_byte fd buf =
  match Unix.read fd buf 0 1 with
  | 0 -> None
  | _ -> Some (Char.code (Bytes.get buf 0))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_byte fd buf

let read_exact fd buf pos len =
  let rec go pos len =
    if len > 0 then
      match Unix.read fd buf pos len with
      | 0 -> raise (Codec.Corrupt "connection closed mid-frame")
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
  in
  go pos len

(* [None] on a clean end-of-stream (peer closed between frames); {!Corrupt}
   on anything malformed: wrong magic, runaway or oversized length,
   truncation inside the frame. *)
let read_frame fd =
  let one = Bytes.create 1 in
  match read_byte fd one with
  | None -> None
  | Some c0 ->
    if Char.chr c0 <> magic.[0] then raise (Codec.Corrupt "bad frame magic");
    let rest = Bytes.create 3 in
    read_exact fd rest 0 3;
    if Bytes.to_string rest <> String.sub magic 1 3 then
      raise (Codec.Corrupt "bad frame magic");
    let len =
      let rec go shift acc n_bytes =
        if n_bytes > 10 then raise (Codec.Corrupt "frame length varint runaway");
        match read_byte fd one with
        | None -> raise (Codec.Corrupt "connection closed mid-frame")
        | Some byte ->
          let acc = acc lor ((byte land 0x7f) lsl shift) in
          if byte land 0x80 <> 0 then go (shift + 7) acc (n_bytes + 1) else acc
      in
      go 0 0 1
    in
    if len < 0 || len > max_frame then
      raise (Codec.Corrupt (Printf.sprintf "frame length %d out of range" len));
    let body = Bytes.create len in
    read_exact fd body 0 len;
    Some (Bytes.unsafe_to_string body)
