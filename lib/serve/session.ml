module Pipeline = Pta_workload.Pipeline
module Incr = Pta_workload.Incr
module Store = Pta_store.Store
module Artifact = Pta_store.Artifact
module Pool = Pta_par.Pool
module Sfs = Pta_sfs.Sfs
module Bitset = Pta_ds.Bitset
open Pta_ir

type loaded = {
  l_prog : Prog.t;
  l_names : (string, Inst.var) Hashtbl.t;
  l_snap : Artifact.points_to;
  l_aux_snap : Artifact.points_to;
  l_unify_snap : Artifact.points_to;
  l_vsfs : Vsfs_core.Vsfs.result option;
  l_istats : Incr.stats;
  l_warm : bool;
  l_pops : int;
}

type t = {
  store : Store.t;
  pool : Pool.t;
  with_vsfs : bool;
  mutable path : string;
  mutable prog : Prog.t;
  mutable names : (string, Inst.var) Hashtbl.t;
  mutable snap : Artifact.points_to;
  mutable aux_snap : Artifact.points_to;  (* the andersen tier *)
  mutable unify_snap : Artifact.points_to;  (* the unify tier *)
  mutable vsfs : Vsfs_core.Vsfs.result option;
  mutable loads : int;
  mutable first_pops : int;
  mutable last_info : Protocol.reload_info;
}

let path t = t.path
let vsfs t = t.vsfs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_for path src =
  if Filename.check_suffix path ".ir" then Parser.parse src
  else Pta_cfront.Lower.compile src

(* last match wins, matching the CLI's [resolve_query] *)
let name_table prog =
  let names = Hashtbl.create 256 in
  Prog.iter_vars prog (fun v -> Hashtbl.replace names (Prog.name prog v) v);
  names

(* A tier snapshot in the exact snapshot's shape: one set per variable and
   per live object, from a flow-insensitive [pt] (which answers objects'
   contents too, unlike the SFS/VSFS accessor split). *)
let snapshot_of ~prog ~pt =
  let n = Prog.n_vars prog in
  {
    Artifact.top = Array.init n pt;
    obj =
      Array.init n (fun v ->
          if Prog.is_object prog v && not (Prog.is_dead prog v) then pt v
          else Bitset.create ());
  }

let same_points_to (a : Artifact.points_to) (b : Artifact.points_to) =
  Array.length a.Artifact.top = Array.length b.Artifact.top
  && Array.for_all2 Bitset.equal a.Artifact.top b.Artifact.top
  && Array.for_all2 Bitset.equal a.Artifact.obj b.Artifact.obj

(* One code path for cold start and reload: incrementality is purely
   store-hit-driven, so a daemon restart against a warm cache splices just
   like an in-place reload does. Any failure — unreadable file, parse or
   lowering error, validation, even a solver invariant trip — is reported
   without touching the previous session state. *)
let load ~store ~with_vsfs ?(jobs = 1) path =
  match
    let src = read_file path in
    let ctx = Pipeline.context ~store ~label:path ~jobs () in
    let b = Pipeline.build_source ~ctx ~compile:(compile_for path) src in
    let warm = Pipeline.stage_warm ctx "build" in
    let svfg = Pipeline.fresh_svfg ~ctx b in
    let r, istats, _ = Incr.run_sfs_spliced ~store ~label:path b svfg in
    let snap = Pipeline.points_to_of_sfs b r in
    (* The cheaper lattice tiers, held as snapshots beside the exact one:
       Andersen's sets come free with the build; the unification classes
       are a near-linear solve over the resident program. *)
    let aux_snap =
      snapshot_of ~prog:b.Pipeline.prog ~pt:b.Pipeline.aux.Pta_memssa.Modref.pt
    in
    let unify_snap =
      let u, _ = Pipeline.run_unify ~ctx b in
      snapshot_of ~prog:b.Pipeline.prog ~pt:(Pta_andersen.Unify.pts u)
    in
    let vsfs =
      if not with_vsfs then None
      else begin
        (* the paper's solver, held hot — and a standing cross-check: the
           spliced SFS answers must be bit-identical to a from-scratch VSFS
           solve of the same source *)
        let svfg2 = Pipeline.fresh_svfg ~ctx b in
        let rv =
          if jobs > 1 then Vsfs_core.Vsfs.Wave.solve ~jobs svfg2
          else Vsfs_core.Vsfs.solve svfg2
        in
        if not (same_points_to snap (Pipeline.points_to_of_vsfs b rv)) then
          failwith "internal: spliced SFS and VSFS disagree";
        Some rv
      end
    in
    {
      l_prog = b.Pipeline.prog;
      l_names = name_table b.Pipeline.prog;
      l_snap = snap;
      l_aux_snap = aux_snap;
      l_unify_snap = unify_snap;
      l_vsfs = vsfs;
      l_istats = istats;
      l_warm = warm;
      l_pops = Sfs.processed r;
    }
  with
  | l -> Ok l
  | exception e ->
    let msg =
      match e with
      | Sys_error m | Failure m -> m
      | Pta_cfront.Lexer.Lex_error (line, m) ->
        Printf.sprintf "lex error at line %d: %s" line m
      | Pta_cfront.Cparser.Parse_error (line, m) ->
        Printf.sprintf "parse error at line %d: %s" line m
      | Pta_cfront.Lower.Lower_error (line, m) ->
        Printf.sprintf "lowering error at line %d: %s" line m
      | Parser.Parse_error (line, m) ->
        Printf.sprintf "IR parse error at line %d: %s" line m
      | e -> Printexc.to_string e
    in
    Error msg

let info_of l =
  {
    Protocol.r_total = l.l_istats.Incr.funcs_total;
    r_reused = l.l_istats.Incr.funcs_reused;
    r_dirty = l.l_istats.Incr.funcs_dirty;
    r_scheduled = l.l_istats.Incr.scheduled;
    r_pops = l.l_pops;
    r_spliceable = l.l_istats.Incr.spliceable;
    r_warm_build = l.l_warm;
  }

let create ~store ~pool ~with_vsfs path =
  match load ~store ~with_vsfs ~jobs:(Pool.jobs pool) path with
  | Error e -> Error e
  | Ok l ->
    Ok
      {
        store;
        pool;
        with_vsfs;
        path;
        prog = l.l_prog;
        names = l.l_names;
        snap = l.l_snap;
        aux_snap = l.l_aux_snap;
        unify_snap = l.l_unify_snap;
        vsfs = l.l_vsfs;
        loads = 1;
        first_pops = l.l_pops;
        last_info = info_of l;
      }

let reload t ?path () =
  let p = match path with Some p -> p | None -> t.path in
  match load ~store:t.store ~with_vsfs:t.with_vsfs ~jobs:(Pool.jobs t.pool) p
  with
  | Error e -> Error e
  | Ok l ->
    t.path <- p;
    t.prog <- l.l_prog;
    t.names <- l.l_names;
    t.snap <- l.l_snap;
    t.aux_snap <- l.l_aux_snap;
    t.unify_snap <- l.l_unify_snap;
    t.vsfs <- l.l_vsfs;
    t.loads <- t.loads + 1;
    t.last_info <- info_of l;
    Ok t.last_info

(* ---------- queries ---------- *)

(* Everything a query answer reads is plain immutable data (the program,
   the name table, bitset arrays) — safe to share read-only with the pool's
   worker domains, unlike solver results whose interned set ids are
   domain-local. *)
type ctx = {
  c_prog : Prog.t;
  c_names : (string, Inst.var) Hashtbl.t;
  c_snap : Artifact.points_to;
}

(* set selection follows [vsfs analyze]: an object's answer is its
   address-taken contents, a variable's its top-level points-to set *)
let set_of c v =
  if Prog.is_object c.c_prog v then c.c_snap.Artifact.obj.(v)
  else c.c_snap.Artifact.top.(v)

let answer c q =
  let resolve n k =
    match Hashtbl.find_opt c.c_names n with
    | None -> Protocol.Unknown n
    | Some v -> k v
  in
  match q with
  | Protocol.Points_to n ->
    resolve n (fun v ->
        Protocol.Set
          (List.map (Prog.name c.c_prog) (Bitset.elements (set_of c v))))
  | Protocol.May_alias (x, y) ->
    resolve x (fun vx ->
        resolve y (fun vy ->
            Protocol.Bool (Bitset.intersects (set_of c vx) (set_of c vy))))
  | Protocol.Points_to_null n ->
    resolve n (fun v -> Protocol.Bool (Bitset.is_empty (set_of c v)))
  | Protocol.Callees n ->
    resolve n (fun v ->
        Protocol.Set
          (List.rev
             (Bitset.fold
                (fun o acc ->
                  match Prog.is_function_obj c.c_prog o with
                  | Some f -> (Prog.func c.c_prog f).Prog.fname :: acc
                  | None -> acc)
                (set_of c v) [])))

(* Tier selection: the request names the least precise results it accepts,
   and the cheapest snapshot of that precision answers. Every snapshot is
   resident, so "cheapest" here is about what had to be computed/kept hot,
   not per-query latency — but the contract (answers may only coarsen down
   the lattice) is what the tests and the fuzz oracle pin. *)
let snap_for t = function
  | Protocol.Exact -> t.snap
  | Protocol.Andersen -> t.aux_snap
  | Protocol.Unify -> t.unify_snap

let ctx ?(tier = Protocol.Exact) t =
  { c_prog = t.prog; c_names = t.names; c_snap = snap_for t tier }

(* Small batches are answered inline; larger ones fan out over the domain
   pool in [jobs]-sized chunks (order-preserving, so the reply is identical
   either way). *)
let batch_threshold = 16

let answers ?tier t qs =
  let c = ctx ?tier t in
  let n = List.length qs in
  if n <= batch_threshold || Pool.jobs t.pool <= 1 then List.map (answer c) qs
  else begin
    let chunk_size = (n + Pool.jobs t.pool - 1) / Pool.jobs t.pool in
    let rec chunks acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | q :: rest ->
        if k = chunk_size then chunks (List.rev cur :: acc) [ q ] 1 rest
        else chunks acc (q :: cur) (k + 1) rest
    in
    List.concat (Pool.map t.pool (List.map (answer c)) (chunks [] [] 0 qs))
  end

let var_names t =
  let acc = ref [] in
  Prog.iter_vars t.prog (fun v -> acc := Prog.name t.prog v :: !acc);
  List.rev !acc

(* the [analyze] default report: non-empty contents of global objects, in
   variable order — byte-comparable against a cold CLI run *)
let report t =
  let c = ctx t in
  let rows = ref [] in
  Prog.iter_vars t.prog (fun v ->
      if Prog.is_object t.prog v then
        match Prog.obj_kind t.prog v with
        | Prog.Global ->
          let set = c.c_snap.Artifact.obj.(v) in
          if not (Bitset.is_empty set) then
            rows :=
              ( Prog.name t.prog v,
                List.map (Prog.name t.prog) (Bitset.elements set) )
              :: !rows
        | _ -> ());
  List.rev !rows

let stats t =
  let i = t.last_info in
  [
    ("path", t.path);
    ("tiers", "unify,andersen,exact");
    ("loads", string_of_int t.loads);
    ("jobs", string_of_int (Pool.jobs t.pool));
    ("vsfs", if t.with_vsfs then "on" else "off");
    ("funcs_total", string_of_int i.Protocol.r_total);
    ("funcs_reused", string_of_int i.Protocol.r_reused);
    ("funcs_dirty", string_of_int i.Protocol.r_dirty);
    ("scheduled", string_of_int i.Protocol.r_scheduled);
    ("spliceable", string_of_bool i.Protocol.r_spliceable);
    ("first_pops", string_of_int t.first_pops);
    ("last_pops", string_of_int i.Protocol.r_pops);
  ]
