(** The daemon's resident analysis state.

    A session owns one analysed program: the lowered IR, a name table, the
    flow-sensitive points-to snapshot (plain bitset arrays, safe to share
    read-only with the worker pool) and — unless created with
    [~with_vsfs:false] — the hot {!Vsfs_core.Vsfs.result} of the paper's
    solver, cross-checked bit-for-bit against the spliced SFS answers on
    every (re)load.

    Loading and reloading share one code path built on
    {!Pta_workload.Incr.run_sfs_spliced}: the store decides what is reused,
    so a daemon restarted against a warm cache splices exactly like an
    in-place reload. A failed (re)load reports its error and leaves the
    previous state — and every query answer — untouched. *)

type t

val create :
  store:Pta_store.Store.t ->
  pool:Pta_par.Pool.t ->
  with_vsfs:bool ->
  string ->
  (t, string) result
(** Load and solve the file (mini-C, or textual IR for [.ir]). The pool is
    borrowed, not owned: callers create/shut it down. *)

val reload : t -> ?path:string -> unit -> (Protocol.reload_info, string) result
(** Re-read and re-analyse the current file (or switch to [path]),
    re-solving only functions whose dependency-closure digests miss the
    store. *)

val answers : ?tier:Protocol.tier -> t -> Protocol.query list ->
  Protocol.answer list
(** Answer a batch, preserving order, from the named tier's snapshot
    (default {!Protocol.Exact}): [Unify] reads the resident unification
    classes, [Andersen] the auxiliary flow-insensitive sets, [Exact] the
    spliced SFS results. Down the lattice answers may only coarsen —
    points-to sets grow, [May_alias] flips only [false] → [true]. Batches
    larger than an internal threshold fan out across the domain pool; the
    reply is identical either way. *)

val var_names : t -> string list
(** Every queryable variable/object name, in variable order (duplicated
    names resolve to the last occurrence, like the CLI). *)

val report : t -> (string * string list) list
(** Non-empty contents of global objects, in variable order — the same
    rows [vsfs analyze]'s default report prints. *)

val stats : t -> (string * string) list
val path : t -> string

val vsfs : t -> Vsfs_core.Vsfs.result option
(** The resident VSFS result ([None] with [~with_vsfs:false]). Its interned
    set ids are domain-local: in-process use only. *)
