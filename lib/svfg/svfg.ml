open Pta_ds
open Pta_ir
open Pta_memssa

type nkind =
  | NInst of { f : Inst.func_id; i : int }
  | NMemPhi of { f : Inst.func_id; at : int; obj : Inst.var }
  | NFormalIn of { f : Inst.func_id; obj : Inst.var }
  | NFormalOut of { f : Inst.func_id; obj : Inst.var }
  | NActualIn of { f : Inst.func_id; call : int; obj : Inst.var }
  | NActualOut of { f : Inst.func_id; call : int; obj : Inst.var }

type t = {
  prog : Prog.t;
  aux : Modref.aux;
  mr : Modref.t;
  annot : Annot.t;
  kinds : nkind Vec.t;
  inst_nodes : int array array;  (* f -> inst -> node id or -1 *)
  formal_ins : (int * int, int) Hashtbl.t;  (* (f, obj) -> node *)
  formal_outs : (int * int, int) Hashtbl.t;
  actual_ins : (int * int * int, int) Hashtbl.t;  (* (f, call, obj) -> node *)
  actual_outs : (int * int * int, int) Hashtbl.t;
  ind_out : (int * int, Bitset.t) Hashtbl.t;  (* (src, obj) -> dsts *)
  mutable n_ind_edges : int;
  def_nodes : int Vec.t;  (* var -> defining node or -1 *)
  user_lists : int list Vec.t;  (* var -> instruction nodes using it *)
  mutable n_dir_edges : int;
  mutable topo_cache : int array option;
      (* ranks of the static snapshot; OTF edges leave it a heuristic *)
}

let prog t = t.prog
let aux t = t.aux
let modref t = t.mr
let annot t = t.annot
let n_nodes t = Vec.length t.kinds
let kind t n = Vec.get t.kinds n

let inst_of t n =
  match kind t n with
  | NInst { f; i } -> Prog.inst (Prog.func t.prog f) i
  | _ -> invalid_arg "Svfg.inst_of: not an instruction node"

let node_of_inst t f i = t.inst_nodes.(f).(i)

let entry_node t f =
  let fn = Prog.func t.prog f in
  t.inst_nodes.(f).(fn.Prog.entry_inst)

let exit_node t f =
  let fn = Prog.func t.prog f in
  t.inst_nodes.(f).(fn.Prog.exit_inst)

let formal_in t f o = Hashtbl.find_opt t.formal_ins (f, o)
let formal_out t f o = Hashtbl.find_opt t.formal_outs (f, o)

let actual_in t (cs : Callgraph.callsite) o =
  Hashtbl.find_opt t.actual_ins (cs.Callgraph.cs_func, cs.Callgraph.cs_inst, o)

let actual_out t (cs : Callgraph.callsite) o =
  Hashtbl.find_opt t.actual_outs (cs.Callgraph.cs_func, cs.Callgraph.cs_inst, o)

let add_indirect_edge t src o dst =
  let key = (src, o) in
  let set =
    match Hashtbl.find_opt t.ind_out key with
    | Some s -> s
    | None ->
      let s = Bitset.create () in
      Hashtbl.add t.ind_out key s;
      s
  in
  if Bitset.add set dst then begin
    t.n_ind_edges <- t.n_ind_edges + 1;
    true
  end
  else false

let iter_ind_succs t n o f =
  match Hashtbl.find_opt t.ind_out (n, o) with
  | Some s -> Bitset.iter f s
  | None -> ()

let iter_objs_defined t n f =
  match kind t n with
  | NInst { f = fid; i } -> Bitset.iter f (Annot.chi t.annot fid i)
  | NMemPhi { obj; _ } | NFormalIn { obj; _ } | NActualOut { obj; _ } -> f obj
  | NFormalOut _ | NActualIn _ -> ()

let iter_ind_all t n f =
  iter_objs_defined t n (fun o -> iter_ind_succs t n o (fun dst -> f o dst));
  match kind t n with
  | NActualIn { obj; _ } | NFormalOut { obj; _ } ->
    iter_ind_succs t n obj (fun dst -> f obj dst)
  | _ -> ()

let add_call_edges t (cs : Callgraph.callsite) g =
  let added = ref [] in
  let mu = Annot.mu t.annot cs.Callgraph.cs_func cs.Callgraph.cs_inst in
  let chi = Annot.chi t.annot cs.Callgraph.cs_func cs.Callgraph.cs_inst in
  Bitset.iter
    (fun o ->
      if Bitset.mem mu o then
        match (actual_in t cs o, formal_in t g o) with
        | Some src, Some dst ->
          if add_indirect_edge t src o dst then added := (src, o, dst) :: !added
        | _ -> ())
    (Modref.inflow t.mr g);
  Bitset.iter
    (fun o ->
      if Bitset.mem chi o then
        match (formal_out t g o, actual_out t cs o) with
        | Some src, Some dst ->
          if add_indirect_edge t src o dst then added := (src, o, dst) :: !added
        | _ -> ())
    (Modref.mods t.mr g);
  !added

let connect_callgraph t cg =
  Callgraph.iter_edges cg (fun cs g -> ignore (add_call_edges t cs g))

let connect_direct_calls t =
  Prog.iter_funcs t.prog (fun fn ->
      for i = 0 to Prog.n_insts fn - 1 do
        match Prog.inst fn i with
        | Inst.Call { callee = Inst.Direct g; _ } ->
          ignore
            (add_call_edges t { Callgraph.cs_func = fn.Prog.id; cs_inst = i } g)
        | _ -> ()
      done)

let def_node t v = if v < Vec.length t.def_nodes then Vec.get t.def_nodes v else -1

let users t v =
  if v < Vec.length t.user_lists then Vec.get t.user_lists v else []

let n_indirect_edges t = t.n_ind_edges
let n_direct_edges t = t.n_dir_edges

let to_digraph t =
  let g = Pta_graph.Digraph.create ~n:(n_nodes t) () in
  Hashtbl.iter
    (fun (src, _) dsts ->
      Bitset.iter (fun dst -> ignore (Pta_graph.Digraph.add_edge g src dst)) dsts)
    t.ind_out;
  for v = 0 to Vec.length t.def_nodes - 1 do
    let d = Vec.get t.def_nodes v in
    if d >= 0 then
      List.iter
        (fun u -> ignore (Pta_graph.Digraph.add_edge g d u))
        (Vec.get t.user_lists v)
  done;
  g

let topo_rank t =
  match t.topo_cache with
  | Some r when Array.length r = n_nodes t -> r
  | _ ->
    let g = to_digraph t in
    let scc = Pta_graph.Scc.compute g in
    let r = Array.init (n_nodes t) (fun n -> Pta_graph.Scc.rank_of_node scc n) in
    t.topo_cache <- Some r;
    r

let pp_node t ppf n =
  let name v = Prog.name t.prog v in
  match kind t n with
  | NInst { f; i } ->
    Format.fprintf ppf "[%d] %s:L%d %a" n (Prog.func t.prog f).Prog.fname i
      (Printer.pp_inst t.prog)
      (Prog.inst (Prog.func t.prog f) i)
  | NMemPhi { f; at; obj } ->
    Format.fprintf ppf "[%d] %s:L%d memphi(%s)" n (Prog.func t.prog f).Prog.fname
      at (name obj)
  | NFormalIn { f; obj } ->
    Format.fprintf ppf "[%d] %s formal-in(%s)" n (Prog.func t.prog f).Prog.fname
      (name obj)
  | NFormalOut { f; obj } ->
    Format.fprintf ppf "[%d] %s formal-out(%s)" n (Prog.func t.prog f).Prog.fname
      (name obj)
  | NActualIn { f; call; obj } ->
    Format.fprintf ppf "[%d] %s:L%d actual-in(%s)" n
      (Prog.func t.prog f).Prog.fname call (name obj)
  | NActualOut { f; call; obj } ->
    Format.fprintf ppf "[%d] %s:L%d actual-out(%s)" n
      (Prog.func t.prog f).Prog.fname call (name obj)

(* ---------- construction ---------- *)

(* Memory-SSA renaming of one function: places MEMPHIs at iterated dominance
   frontiers of definition sites and walks the dominator tree keeping a
   stack of reaching definitions per object; every use found emits an
   indirect def-use edge. *)
let rename_function t fn =
  let f = fn.Prog.id in
  let cfg = fn.Prog.cfg in
  let entry = fn.Prog.entry_inst in
  let entry_chi = Annot.entry_chi t.annot f in
  let exit_mu = Annot.exit_mu t.annot f in
  (* Definition sites per object (instruction ids). *)
  let defsites : (Inst.var, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_defsite o i =
    match Hashtbl.find_opt defsites o with
    | Some l -> l := i :: !l
    | None -> Hashtbl.add defsites o (ref [ i ])
  in
  Bitset.iter (fun o -> add_defsite o entry) entry_chi;
  for i = 0 to Prog.n_insts fn - 1 do
    Bitset.iter (fun o -> add_defsite o i) (Annot.chi t.annot f i)
  done;
  if Hashtbl.length defsites > 0 || not (Bitset.is_empty exit_mu) then begin
    let dom = Pta_graph.Dom.compute cfg ~entry in
    let df = Pta_graph.Dom.dom_frontier cfg dom in
    (* MEMPHI placement. *)
    let memphis : (int, (Inst.var * int) list ref) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun o sites ->
        let joins = Pta_graph.Dom.iterated_frontier df !sites in
        Bitset.iter
          (fun j ->
            let node = Vec.push t.kinds (NMemPhi { f; at = j; obj = o }) in
            match Hashtbl.find_opt memphis j with
            | Some l -> l := (o, node) :: !l
            | None -> Hashtbl.add memphis j (ref [ (o, node) ]))
          joins)
      defsites;
    (* Renaming. *)
    let children = Pta_graph.Dom.dom_tree_children dom in
    let stacks : (Inst.var, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let stack_of o =
      match Hashtbl.find_opt stacks o with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add stacks o r;
        r
    in
    let top o =
      match !(stack_of o) with
      | d :: _ -> d
      | [] ->
        (* Every annotated object is in the function's inflow and thus has a
           FormalIn definition at the entry; an empty stack is a bug. *)
        invalid_arg
          (Printf.sprintf
             "Svfg.rename_function: object %s has no reaching definition in \
              %s (missing FormalIn — annotation inflow out of sync)"
             (Prog.name t.prog o) fn.Prog.fname)
    in
    let edge src o dst = ignore (add_indirect_edge t src o dst) in
    let rec walk i =
      let pushed = ref [] in
      let push o d =
        let st = stack_of o in
        st := d :: !st;
        pushed := o :: !pushed
      in
      (* MEMPHIs attached to this CFG node define first. *)
      (match Hashtbl.find_opt memphis i with
      | Some l -> List.iter (fun (o, node) -> push o node) !l
      | None -> ());
      (match Prog.inst fn i with
      | Inst.Entry ->
        Bitset.iter
          (fun o -> push o (Option.get (formal_in t f o)))
          entry_chi
      | Inst.Exit ->
        Bitset.iter
          (fun o -> edge (top o) o (Option.get (formal_out t f o)))
          exit_mu
      | Inst.Load _ ->
        let node = t.inst_nodes.(f).(i) in
        Bitset.iter (fun o -> edge (top o) o node) (Annot.mu t.annot f i)
      | Inst.Store _ ->
        let node = t.inst_nodes.(f).(i) in
        Bitset.iter
          (fun o ->
            (* weak-update operand, then the store defines the object *)
            edge (top o) o node;
            push o node)
          (Annot.chi t.annot f i)
      | Inst.Call _ ->
        Bitset.iter
          (fun o ->
            edge (top o) o
              (Hashtbl.find t.actual_ins (f, i, o)))
          (Annot.mu t.annot f i);
        Bitset.iter
          (fun o ->
            let ao = Hashtbl.find t.actual_outs (f, i, o) in
            (* the call's χ also consumes the previous definition (weak) *)
            edge (top o) o ao;
            push o ao)
          (Annot.chi t.annot f i)
      | Inst.Alloc _ | Inst.Copy _ | Inst.Phi _ | Inst.Field _ | Inst.Branch ->
        ());
      (* Feed MEMPHI operands of CFG successors. *)
      Pta_graph.Digraph.iter_succs cfg i (fun m ->
          match Hashtbl.find_opt memphis m with
          | Some l ->
            List.iter
              (fun (o, node) ->
                match !(stack_of o) with
                | d :: _ -> edge d o node
                | [] -> ())
              !l
          | None -> ());
      List.iter walk children.(i);
      List.iter (fun o -> stack_of o := List.tl !(stack_of o)) !pushed
    in
    walk entry
  end

(* Direct (top-level) def-use edges. *)
let build_direct t =
  let prog = t.prog in
  Prog.iter_funcs prog (fun fn ->
      let f = fn.Prog.id in
      for i = 0 to Prog.n_insts fn - 1 do
        let node = t.inst_nodes.(f).(i) in
        if node >= 0 then begin
          let ins = Prog.inst fn i in
          (match ins with
          | Inst.Entry ->
            List.iter (fun p -> Vec.set t.def_nodes p node) fn.Prog.params
          | _ -> (
            match Inst.def ins with
            | Some v -> Vec.set t.def_nodes v node
            | None -> ()));
          let uses =
            match ins with
            | Inst.Exit -> (
              match fn.Prog.ret with Some r -> [ r ] | None -> [])
            | ins -> Inst.uses ins
          in
          List.iter
            (fun v -> Vec.set t.user_lists v (node :: Vec.get t.user_lists v))
            uses
        end
      done);
  let count = ref 0 in
  for v = 0 to Vec.length t.def_nodes - 1 do
    if Vec.get t.def_nodes v >= 0 then
      count := !count + List.length (Vec.get t.user_lists v)
  done;
  t.n_dir_edges <- !count

(* ---------- serialization (Pta_store) ---------- *)

type raw = {
  raw_kinds : nkind array;
  raw_ind : (int * int * int array) array;
  raw_mods : Bitset.t array;
  raw_refs : Bitset.t array;
  raw_mu : Bitset.t array array;
  raw_chi : Bitset.t array array;
  raw_entry_chis : Bitset.t array;
  raw_exit_mus : Bitset.t array;
}

let export t =
  let raw_kinds = Array.init (n_nodes t) (fun n -> kind t n) in
  let edges =
    Hashtbl.fold
      (fun (src, o) dsts acc ->
        (src, o, Array.of_list (Bitset.elements dsts)) :: acc)
      t.ind_out []
  in
  (* Hashtbl order is nondeterministic; sort so identical graphs encode to
     identical bytes (stable content hashes). *)
  let raw_ind =
    Array.of_list
      (List.sort
         (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d))
         edges)
  in
  let raw_mods, raw_refs = Modref.export t.mr in
  let raw_mu, raw_chi, raw_entry_chis, raw_exit_mus = Annot.export t.annot in
  { raw_kinds; raw_ind; raw_mods; raw_refs; raw_mu; raw_chi; raw_entry_chis;
    raw_exit_mus }

let import prog (aux : Modref.aux) raw =
  let mr = Modref.import ~mods:raw.raw_mods ~refs:raw.raw_refs in
  let annot =
    Annot.import ~mu:raw.raw_mu ~chi:raw.raw_chi
      ~entry_chis:raw.raw_entry_chis ~exit_mus:raw.raw_exit_mus
  in
  let nf = Prog.n_funcs prog in
  let t =
    {
      prog;
      aux;
      mr;
      annot;
      kinds = Vec.create ~dummy:(NInst { f = -1; i = -1 }) ();
      inst_nodes = Array.make nf [||];
      formal_ins = Hashtbl.create 64;
      formal_outs = Hashtbl.create 64;
      actual_ins = Hashtbl.create 64;
      actual_outs = Hashtbl.create 64;
      ind_out = Hashtbl.create (max 16 (Array.length raw.raw_ind));
      n_ind_edges = 0;
      def_nodes = Vec.create ~dummy:(-1) ();
      user_lists = Vec.create ~dummy:[] ();
      n_dir_edges = 0;
      topo_cache = None;
    }
  in
  Vec.grow_to t.def_nodes (Prog.n_vars prog);
  Vec.grow_to t.user_lists (Prog.n_vars prog);
  Prog.iter_funcs prog (fun fn ->
      t.inst_nodes.(fn.Prog.id) <- Array.make (Prog.n_insts fn) (-1));
  (* Node tables are derivable from the kind array alone. *)
  Array.iteri
    (fun n k ->
      let n' = Vec.push t.kinds k in
      if n' <> n then invalid_arg "Svfg.import: kind array corrupt";
      match k with
      | NInst { f; i } ->
        if f < 0 || f >= nf || i < 0 || i >= Array.length t.inst_nodes.(f) then
          invalid_arg "Svfg.import: instruction node out of range";
        t.inst_nodes.(f).(i) <- n
      | NMemPhi _ -> ()
      | NFormalIn { f; obj } -> Hashtbl.replace t.formal_ins (f, obj) n
      | NFormalOut { f; obj } -> Hashtbl.replace t.formal_outs (f, obj) n
      | NActualIn { f; call; obj } ->
        Hashtbl.replace t.actual_ins (f, call, obj) n
      | NActualOut { f; call; obj } ->
        Hashtbl.replace t.actual_outs (f, call, obj) n)
    raw.raw_kinds;
  (* Fresh edge sets per import: solvers mutate them (on-the-fly call-graph
     edges), so two imports of the same raw value must not share state. *)
  Array.iter
    (fun (src, o, dsts) ->
      Array.iter (fun dst -> ignore (add_indirect_edge t src o dst)) dsts)
    raw.raw_ind;
  build_direct t;
  t

let build prog (aux : Modref.aux) =
  let mr = Modref.compute prog aux in
  let annot = Annot.compute prog aux mr in
  let nf = Prog.n_funcs prog in
  let t =
    {
      prog;
      aux;
      mr;
      annot;
      kinds = Vec.create ~dummy:(NInst { f = -1; i = -1 }) ();
      inst_nodes = Array.make nf [||];
      formal_ins = Hashtbl.create 64;
      formal_outs = Hashtbl.create 64;
      actual_ins = Hashtbl.create 64;
      actual_outs = Hashtbl.create 64;
      ind_out = Hashtbl.create 1024;
      n_ind_edges = 0;
      def_nodes = Vec.create ~dummy:(-1) ();
      user_lists = Vec.create ~dummy:[] ();
      n_dir_edges = 0;
      topo_cache = None;
    }
  in
  Vec.grow_to t.def_nodes (Prog.n_vars prog);
  Vec.grow_to t.user_lists (Prog.n_vars prog);
  (* 1. Instruction nodes (all but pure control flow). *)
  Prog.iter_funcs prog (fun fn ->
      let f = fn.Prog.id in
      let n = Prog.n_insts fn in
      t.inst_nodes.(f) <- Array.make n (-1);
      for i = 0 to n - 1 do
        match Prog.inst fn i with
        | Inst.Branch -> ()
        | _ -> t.inst_nodes.(f).(i) <- Vec.push t.kinds (NInst { f; i })
      done);
  (* 2. Call-boundary and function-boundary memory nodes. *)
  Prog.iter_funcs prog (fun fn ->
      let f = fn.Prog.id in
      Bitset.iter
        (fun o ->
          Hashtbl.replace t.formal_ins (f, o)
            (Vec.push t.kinds (NFormalIn { f; obj = o })))
        (Annot.entry_chi annot f);
      Bitset.iter
        (fun o ->
          Hashtbl.replace t.formal_outs (f, o)
            (Vec.push t.kinds (NFormalOut { f; obj = o })))
        (Annot.exit_mu annot f);
      for i = 0 to Prog.n_insts fn - 1 do
        if Inst.is_call (Prog.inst fn i) then begin
          Bitset.iter
            (fun o ->
              Hashtbl.replace t.actual_ins (f, i, o)
                (Vec.push t.kinds (NActualIn { f; call = i; obj = o })))
            (Annot.mu annot f i);
          Bitset.iter
            (fun o ->
              Hashtbl.replace t.actual_outs (f, i, o)
                (Vec.push t.kinds (NActualOut { f; call = i; obj = o })))
            (Annot.chi annot f i)
        end
      done);
  (* 3. Memory-SSA renaming: MEMPHIs + intraprocedural indirect edges. *)
  Prog.iter_funcs prog (fun fn -> rename_function t fn);
  (* 4. Direct def-use edges. *)
  build_direct t;
  t
