(** The sparse value-flow graph (§II-B).

    Nodes are the program's instructions plus the memory-SSA nodes: MEMPHIs
    at control-flow joins, and the four call-boundary node kinds that keep a
    call site's μ and χ channels separate (SVF's ActualIn/ActualOut/
    FormalIn/FormalOut; the paper folds these into CALL/FUNENTRY/FUNEXIT).

    Indirect edges [ℓ --o--> ℓ'] are labelled with an address-taken object
    and connect a definition of [o] to a use; they are produced here by a
    per-function SSA renaming over the dominator tree (χ/μ sites from
    {!Pta_memssa.Annot}, MEMPHI placement at iterated dominance frontiers).
    Direct edges connect the unique definition of each top-level variable to
    its uses.

    Interprocedural indirect edges (ActualIn → FormalIn, FormalOut →
    ActualOut) are added either statically from the auxiliary call graph
    ({!connect_callgraph}) or one call edge at a time by the flow-sensitive
    solvers' on-the-fly call-graph resolution ({!add_call_edges}). *)

type nkind =
  | NInst of { f : Pta_ir.Inst.func_id; i : int }
  | NMemPhi of { f : Pta_ir.Inst.func_id; at : int; obj : Pta_ir.Inst.var }
  | NFormalIn of { f : Pta_ir.Inst.func_id; obj : Pta_ir.Inst.var }
  | NFormalOut of { f : Pta_ir.Inst.func_id; obj : Pta_ir.Inst.var }
  | NActualIn of { f : Pta_ir.Inst.func_id; call : int; obj : Pta_ir.Inst.var }
  | NActualOut of { f : Pta_ir.Inst.func_id; call : int; obj : Pta_ir.Inst.var }

type t

val build : Pta_ir.Prog.t -> Pta_memssa.Modref.aux -> t
(** Builds nodes, all intraprocedural indirect edges, and all direct edges.
    Interprocedural indirect edges are not added (see above). *)

(* Structure access ------------------------------------------------------- *)

val prog : t -> Pta_ir.Prog.t
val aux : t -> Pta_memssa.Modref.aux
val modref : t -> Pta_memssa.Modref.t
val annot : t -> Pta_memssa.Annot.t

val n_nodes : t -> int
val kind : t -> int -> nkind
val inst_of : t -> int -> Pta_ir.Inst.t
(** @raise Invalid_argument if the node is not an instruction node. *)

val node_of_inst : t -> Pta_ir.Inst.func_id -> int -> int
(** Node id of an instruction ([-1] for control-flow-only instructions). *)

val entry_node : t -> Pta_ir.Inst.func_id -> int
val exit_node : t -> Pta_ir.Inst.func_id -> int
val formal_in : t -> Pta_ir.Inst.func_id -> Pta_ir.Inst.var -> int option
val formal_out : t -> Pta_ir.Inst.func_id -> Pta_ir.Inst.var -> int option
val actual_in : t -> Pta_ir.Callgraph.callsite -> Pta_ir.Inst.var -> int option
val actual_out : t -> Pta_ir.Callgraph.callsite -> Pta_ir.Inst.var -> int option

(* Indirect edges --------------------------------------------------------- *)

val add_indirect_edge : t -> int -> Pta_ir.Inst.var -> int -> bool
(** [add_indirect_edge t src o dst]; [true] iff new. *)

val iter_ind_succs : t -> int -> Pta_ir.Inst.var -> (int -> unit) -> unit
val iter_ind_all : t -> int -> (Pta_ir.Inst.var -> int -> unit) -> unit
(** All outgoing indirect edges of a node. *)

val iter_objs_defined : t -> int -> (Pta_ir.Inst.var -> unit) -> unit
(** Objects for which the node is a definition (χ objects for stores/calls,
    the node's object for memory nodes). *)

val add_call_edges : t -> Pta_ir.Callgraph.callsite -> Pta_ir.Inst.func_id ->
  (int * Pta_ir.Inst.var * int) list
(** Adds the interprocedural edges for one resolved call edge; returns the
    edges that were actually new as [(src, obj, dst)]. *)

val connect_callgraph : t -> Pta_ir.Callgraph.t -> unit

val connect_direct_calls : t -> unit
(** Adds the interprocedural edges of all *direct* call sites (their targets
    are static). Must run before versioning and before either flow-sensitive
    solver; indirect-call edges are added during solving, which is what the
    paper's δ nodes account for. *)

(* Direct edges ----------------------------------------------------------- *)

val def_node : t -> Pta_ir.Inst.var -> int
(** Node defining the top-level variable ([-1] if none): its defining
    instruction, or the function entry node for parameters. *)

val users : t -> Pta_ir.Inst.var -> int list
(** Instruction nodes that use the variable (function-exit nodes use the
    returned variable). *)

(* Statistics (Table II) -------------------------------------------------- *)

val n_indirect_edges : t -> int
val n_direct_edges : t -> int

val to_digraph : t -> Pta_graph.Digraph.t
(** Snapshot of the current adjacency (direct + indirect edges, labels
    dropped), used to compute an SCC-topological processing order for the
    solvers — the scheduling SVF uses. *)

val topo_rank : t -> int array
(** [rank.(node)]: topological rank of the node's SCC in the snapshot
    (sources first). Computed on demand; OTF edges added later make it a
    heuristic, which is all the solvers need. *)

val pp_node : t -> Format.formatter -> int -> unit

(* Serialization (Pta_store) ---------------------------------------------- *)

type raw = {
  raw_kinds : nkind array;  (** node id -> kind *)
  raw_ind : (int * int * int array) array;
      (** indirect edges as [(src, obj, dsts)], sorted by [(src, obj)] *)
  raw_mods : Pta_ds.Bitset.t array;
  raw_refs : Pta_ds.Bitset.t array;
  raw_mu : Pta_ds.Bitset.t array array;
  raw_chi : Pta_ds.Bitset.t array array;
  raw_entry_chis : Pta_ds.Bitset.t array;
  raw_exit_mus : Pta_ds.Bitset.t array;
}
(** Everything {!import} needs that is not derivable in linear time from the
    program: node kinds, indirect edges, and the mod/ref and χ/μ tables the
    solvers' on-the-fly call-graph resolution reads. Instruction-node maps,
    call-boundary lookup tables and direct def-use edges are rebuilt. *)

val export : t -> raw
(** Deterministic snapshot of the current graph (export after
    {!connect_direct_calls} and before solving, so import needs neither). *)

val import : Pta_ir.Prog.t -> Pta_memssa.Modref.aux -> raw -> t
(** Rebuild a graph from a snapshot in time linear in nodes + edges —
    skipping mod/ref and χ/μ fixpoints, dominance frontiers and SSA renaming.
    Each call yields an independent mutable graph (solvers mutate the edge
    sets), so one decoded [raw] can seed many solver runs.
    @raise Invalid_argument on malformed snapshots. *)
