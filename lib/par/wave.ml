open Pta_ds
module Wavefront = Pta_graph.Wavefront
module Telemetry = Pta_engine.Telemetry

type ('task, 'delta) client = {
  plan : Wavefront.t;
  seeds : int list;
  node_par_ok : int -> bool;
  process : int -> int list;
  extract : comp:int -> int array -> 'task;
  eval : 'task -> 'delta;
  apply_reg : comp:int -> 'delta -> unit;
  apply : comp:int -> 'delta -> int list;
  measure : 'delta -> int * int;
  tel : Telemetry.phase option;
}

let counter tel name =
  match tel with Some t -> Telemetry.counter t name | None -> ref 0

let drive ?(jobs = 1) cl =
  let plan = cl.plan in
  let nc = Wavefront.n_comps plan in
  (* Per-component FIFO queues in (level, comp)-sorted positions, with a
     backward-resetting cursor — the same discipline as the sequential
     [`Wave] scheduler, lifted from nodes to whole components. *)
  let queues = Array.init nc (fun _ -> Queue.create ()) in
  let queued = Bitset.create () in
  let comps = Array.init nc Fun.id in
  Array.sort
    (fun a b ->
      compare
        (Wavefront.level_of_comp plan a, a)
        (Wavefront.level_of_comp plan b, b))
    comps;
  let pos = Array.make nc 0 in
  Array.iteri (fun p c -> pos.(c) <- p) comps;
  let cursor = ref nc in
  let count = ref 0 in
  let push n =
    if Bitset.add queued n then begin
      let c = Wavefront.comp_of_node plan n in
      Queue.push n queues.(c);
      if pos.(c) < !cursor then cursor := pos.(c);
      incr count
    end
  in
  List.iter push cl.seeds;
  let comp_par_ok =
    Array.init nc (fun c ->
        Array.for_all cl.node_par_ok (Wavefront.comp_members plan c))
  in
  (* Dirty nodes of a component, ascending; clears their queued marks. *)
  let drain c =
    let q = queues.(c) in
    let xs = Array.make (Queue.length q) 0 in
    for i = 0 to Array.length xs - 1 do
      let n = Queue.pop q in
      ignore (Bitset.remove queued n);
      xs.(i) <- n
    done;
    count := !count - Array.length xs;
    Array.sort compare xs;
    xs
  in
  let seq_pops = counter cl.tel "wave_seq_pops" in
  let par_pops = counter cl.tel "wave_par_pops" in
  let batches = counter cl.tel "wave_batches" in
  let tasks_c = counter cl.tel "wave_tasks" in
  let seq_comps = counter cl.tel "wave_seq_comps" in
  let width_max = counter cl.tel "wave_width_max" in
  let width_sum = counter cl.tel "wave_width_sum" in
  let merge_us = counter cl.tel "wave_merge_us" in
  (counter cl.tel "wave_levels") := Wavefront.n_levels plan;
  (counter cl.tel "wave_comps") := nc;
  let dom_pops = Hashtbl.create 8 in
  (* Solve one component to a local fixpoint on the caller domain. *)
  let run_seq c =
    let local = Queue.create () in
    let marks = Bitset.create () in
    let feed n = if Bitset.add marks n then Queue.push n local in
    Array.iter feed (drain c);
    while not (Queue.is_empty local) do
      let n = Queue.pop local in
      ignore (Bitset.remove marks n);
      incr seq_pops;
      List.iter
        (fun m ->
          if Wavefront.comp_of_node plan m = c then feed m else push m)
        (cl.process n)
    done
  in
  let run_batch pool =
    incr batches;
    (* [cursor] points at the first dirty position; every dirty component
       at the same level belongs to this batch. Positions are (level, comp)
       sorted, so the level's range is contiguous and batch members come
       out in ascending component order. *)
    while Queue.is_empty queues.(comps.(!cursor)) do
      incr cursor
    done;
    let lvl = Wavefront.level_of_comp plan comps.(!cursor) in
    let batch = ref [] in
    let p = ref !cursor in
    while
      !p < nc && Wavefront.level_of_comp plan comps.(!p) = lvl
    do
      if not (Queue.is_empty queues.(comps.(!p))) then
        batch := comps.(!p) :: !batch;
      incr p
    done;
    let batch = List.rev !batch in
    let width = List.length batch in
    if width > !width_max then width_max := width;
    width_sum := !width_sum + width;
    let seqs, pars = List.partition (fun c -> not comp_par_ok.(c)) batch in
    (* Sequential components first: their pushes may add dirty nodes to the
       parallel components of the same batch, which extraction then picks
       up (same-level components are independent, so this only grows the
       dirty sets, never invalidates them). *)
    List.iter
      (fun c ->
        incr seq_comps;
        run_seq c)
      seqs;
    let pars = List.filter (fun c -> not (Queue.is_empty queues.(c))) pars in
    let tasks = List.map (fun c -> (c, cl.extract ~comp:c (drain c))) pars in
    tasks_c := !tasks_c + List.length tasks;
    let deltas =
      match pool with
      | Some pool when List.length tasks > 1 ->
        Pool.map pool (fun (_, tk) -> cl.eval tk) tasks
      | _ -> List.map (fun (_, tk) -> cl.eval tk) tasks
    in
    (* Barrier merge, ascending component order (the pool preserved input
       order): all registrations first, then all data deltas. *)
    let t0 = Unix.gettimeofday () in
    List.iter2 (fun (c, _) d -> cl.apply_reg ~comp:c d) tasks deltas;
    List.iter2
      (fun (c, _) d ->
        let dom, pops = cl.measure d in
        par_pops := !par_pops + pops;
        (match Hashtbl.find_opt dom_pops dom with
        | Some r -> r := !r + pops
        | None -> Hashtbl.add dom_pops dom (ref pops));
        List.iter push (cl.apply ~comp:c d))
      tasks deltas;
    merge_us :=
      !merge_us + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
  in
  let loop pool =
    while !count > 0 do
      run_batch pool
    done
  in
  if jobs > 1 then Pool.with_pool ~jobs (fun pool -> loop (Some pool))
  else loop None;
  match cl.tel with
  | None -> ()
  | Some tel ->
    Hashtbl.iter
      (fun dom pops ->
        (Telemetry.counter tel (Printf.sprintf "wave_dom%d_pops" dom))
        := !pops)
      dom_pops
