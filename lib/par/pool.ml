(* Fixed-size domain pool over a bounded task queue.

   One mutex guards the queue; [nonempty]/[nonfull] carry the two waiting
   directions. Workers loop pop-run-repeat until [closed] and the queue is
   drained, so [shutdown] never abandons accepted work. [map] tracks its own
   completion state (results/errors arrays + a countdown), so several maps
   could in principle share one pool; results are published to the caller
   through the completion mutex, which is the synchronisation point that
   makes the plain [results] array safe to read after the join. *)

type t = {
  jobs : int;
  bound : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

exception Task_error of { index : int; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Task_error { index; exn; _ } ->
      Some
        (Printf.sprintf "Pool.Task_error (task %d: %s)" index
           (Printexc.to_string exn))
    | _ -> None)

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

let worker t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m (* closed: exit *)
    else begin
      let task = Queue.pop t.queue in
      Condition.signal t.nonfull;
      Mutex.unlock t.m;
      task ();
      loop ()
    end
  in
  loop ()

let create ?queue_bound ~jobs () =
  let jobs = max jobs 1 in
  let bound =
    match queue_bound with Some b -> max b 1 | None -> max (2 * jobs) 4
  in
  let t =
    {
      jobs;
      bound;
      queue = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      closed = false;
      domains = [];
    }
  in
  t.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t task =
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.map: pool is shut down"
  end;
  while Queue.length t.queue >= t.bound do
    Condition.wait t.nonfull t.m
  done;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

let map t f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let failed = ref false in
    let done_m = Mutex.create () in
    let done_c = Condition.create () in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            (* Once a failure is recorded the map's outcome is fixed (the
               lowest failing index is re-raised), so still-queued tasks are
               drained without running — they only cost their dequeue. Tasks
               already in flight on other workers run to completion. *)
            Mutex.lock done_m;
            let skip = !failed in
            Mutex.unlock done_m;
            let outcome =
              if skip then None
              else
                match f x with
                | r -> Some (Ok r)
                | exception e -> Some (Error (e, Printexc.get_backtrace ()))
            in
            Mutex.lock done_m;
            (match outcome with
            | Some (Ok r) -> results.(i) <- Some r
            | Some (Error eb) ->
              errors.(i) <- Some eb;
              failed := true
            | None -> ());
            decr remaining;
            if !remaining = 0 then Condition.signal done_c;
            Mutex.unlock done_m))
      arr;
    Mutex.lock done_m;
    while !remaining > 0 do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m;
    Array.iteri
      (fun index -> function
        | Some (exn, backtrace) -> raise (Task_error { index; exn; backtrace })
        | None -> ())
      errors;
    Array.to_list (Array.map Option.get results)
  end

let shutdown t =
  Mutex.lock t.m;
  let domains = t.domains in
  t.closed <- true;
  t.domains <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  List.iter Domain.join domains

let with_pool ?queue_bound ~jobs f =
  let t = create ?queue_bound ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ~jobs f items = with_pool ~jobs (fun t -> map t f items)
