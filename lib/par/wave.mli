(** Wavefront-parallel fixpoint driver over an SCC level plan.

    [drive] runs a solver to fixpoint level by level: it keeps one FIFO
    queue per component of the client's {!Pta_graph.Wavefront} plan, finds
    the lowest level with dirty components, and solves that level's dirty
    components as a batch — components the client marks parallel-safe are
    [extract]ed into plain-data tasks and [eval]uated concurrently on pool
    domains, the rest run sequentially through [process]. The batch ends
    with a barrier: deltas are applied in ascending component order
    (pool [map] preserves input order, so worker completion interleaving is
    invisible), and the pushes [apply] returns re-dirty components — possibly
    at *lower* levels (dynamic call edges are back-edges of the static
    plan), in which case the driver re-sweeps from the lowest dirty level.

    Determinism: the fixpoint itself is schedule-independent (monotone
    functions on a finite lattice have one least fixpoint), and the merge
    applies sorted deltas in sorted component order, so even the caller's
    interned {!Pta_ds.Ptset} ids come out identical run to run.

    Domain-safety contract for [eval]: it runs on a pool worker domain, so
    it must not touch caller-domain [Ptset.t] ids or mutate any caller
    structure — tasks and deltas carry plain data ([Bitset.t], ints), and
    frozen bitsets inside a task are read-only snapshots that the caller
    guarantees quiescent while the batch is in flight. *)

type ('task, 'delta) client = {
  plan : Pta_graph.Wavefront.t;
  seeds : int list;
  node_par_ok : int -> bool;
      (** nodes whose transfer function neither interns new objects nor
          mutates shared solver structure; a component is evaluated in
          parallel only if every member qualifies *)
  process : int -> int list;
      (** sequential transfer for one node (caller domain); returns the
          nodes to re-push *)
  extract : comp:int -> int array -> 'task;
      (** freeze a parallel task for a component from its sorted dirty
          nodes (caller domain) *)
  eval : 'task -> 'delta;
      (** local fixpoint over the frozen task (worker domain, plain data) *)
  apply_reg : comp:int -> 'delta -> unit;
      (** first merge pass: registrations (node-object memberships, version
          subscriptions) — applied for *every* delta of a batch before any
          data pass, so cross-task data pushes see them *)
  apply : comp:int -> 'delta -> int list;
      (** second merge pass: data writes; returns the nodes to re-push *)
  measure : 'delta -> int * int;
      (** (worker domain id, local pops) — telemetry only *)
  tel : Pta_engine.Telemetry.phase option;
}

val drive : ?jobs:int -> ('task, 'delta) client -> unit
(** Run to global fixpoint. [jobs <= 1] evaluates tasks on the caller
    domain through the same extract/eval/apply path (the drive is then a
    deterministic sequential schedule); [jobs > 1] spins up a
    {!Pool.with_pool} for the duration of the drive.

    Telemetry (when [tel] is given): [wave_levels] (plan critical path),
    [wave_comps], [wave_batches], [wave_tasks] (parallel tasks evaluated),
    [wave_seq_comps] (components run sequentially), [wave_width_max] /
    [wave_width_sum] (dirty components per batch), [wave_par_pops],
    [wave_seq_pops], [wave_merge_us] (barrier merge wall time, µs) and
    per-domain [wave_dom<i>_pops] counters. *)
