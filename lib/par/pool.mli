(** A fixed-size pool of worker domains with a bounded task queue.

    The batch layers (bench suite, fuzz campaign, warm-store replay) are
    embarrassingly parallel: many independent whole-program analyses with no
    shared solver state. This pool is the one execution primitive they all
    share — stdlib [Domain] + [Mutex]/[Condition] only, no dependencies.

    Tasks always execute on worker domains, never on the caller's domain
    (even at [jobs = 1]): every per-domain analysis state ([Pta_ds.Ptset]
    intern pool, [Pta_ds.Stats] counters, [Pta_engine.Telemetry] sink) is
    domain-local, so running tasks off the caller's domain guarantees the
    caller's state is untouched by the batch and that [jobs = 1] and
    [jobs = N] runs see identical per-task state lifecycles. Values crossing
    the pool boundary must be plain data — in particular they must not hold
    [Ptset.t] ids or closures over solver state, which are only meaningful
    on the domain that interned them. *)

type t

exception Task_error of { index : int; exn : exn; backtrace : string }
(** A worker task raised: [index] is the position of the offending item in
    the [map] input (0-based), [exn] the original exception. When several
    tasks fail, the lowest index is re-raised, deterministically. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?queue_bound:int -> jobs:int -> unit -> t
(** Spawn [max jobs 1] worker domains. [queue_bound] (default
    [2 * jobs], min 4) caps the task queue; submitters block when it is
    full, bounding the closures (and their captured inputs) alive at once. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f items] runs [f] on every item on the pool's workers and
    returns the results in input order. Blocks until all tasks settle; if
    any task raised, re-raises the lowest recorded failing index as
    {!Task_error}. Once a failure is recorded, tasks still queued are
    drained without running their bodies (tasks already in flight finish) —
    so nothing is silently in flight when [map] raises, and a long batch
    does not grind through doomed work after the first crash.
    @raise Invalid_argument if the pool was shut down. *)

val shutdown : t -> unit
(** Drain the queue, join every worker. Idempotent. *)

val with_pool : ?queue_bound:int -> jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

val run : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [with_pool] + [map]. *)
